"""Network ingestion core: wire protocol, reorder window, overload policies.

This module is the *synchronous* heart of the serving front end
(:mod:`repro.core.server` wraps it in asyncio): everything that decides
what happens to an arriving frame lives here, with no sockets involved,
so the fault-injection and property tests drive it directly.

Pipeline of one arriving frame::

    bytes on the wire
      └─ decode_frame()            length-prefixed, uint8 payload viewed
      └─ ReorderWindow.push()      in-order release; dups/late dropped;
                                   bounded wait for stragglers, then a
                                   *gap* is declared and sealed
      └─ bounded ready queue       per-stream; overload policy applies
                                   (drop-oldest / degrade)
      └─ StreamMultiplexer.submit  frames enter the shared execution core;
                                   a sealed gap forces an I-frame and tags
                                   telemetry ``dropped-frame-gap``

Ordering invariant (property-tested): the frames the core *accepts*
produce results bit-identical to feeding the same surviving subsequence —
with an I-frame forced at every gap — to a serial
:class:`~repro.core.session.EuphratesSession`.  Degradation is observable
but never silent: every drop, deferral and gap lands in
:class:`~repro.core.types.FrameTelemetry` / the stream's fault counters.

Admission control prices a new stream on the
:class:`~repro.soc.frame_cost.CapacityModel` M/D/1 budget: a stream is
rejected exactly when the projected shared-backend utilisation would
reach 1 (the queueing wait diverges — the pool can never catch up).

Wire protocol (asyncio TCP, but codec usable over any byte transport)::

    message   := u32 length (big endian, of what follows) | u8 type | body
    FRAME body:= u32 handle | u32 seq | u16 height | u16 width
                 | u32 truth_len | truth JSON (truth_len bytes)
                 | h*w uint8 luma pixels
    other bodies are UTF-8 JSON objects.

Frame payloads stay ``uint8`` end to end: the decoder returns a zero-copy
:class:`numpy.ndarray` view of the receive buffer, and submission writes
it straight into the executor transport's ring slot — frames are never
pickled.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .executor import FrameRecord, StreamFailedError
from .geometry import BoundingBox
from .types import Detection, SequenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..soc.frame_cost import CapacityModel, QueueingEstimate
    from .streaming import StreamMultiplexer

__all__ = [
    "MSG_BYE",
    "MSG_BYE_OK",
    "MSG_ERROR",
    "MSG_FRAME",
    "MSG_HEALTH",
    "MSG_HELLO",
    "MSG_HELLO_OK",
    "MSG_REJECT",
    "MSG_RESULT",
    "MSG_STATS",
    "OVERLOAD_POLICIES",
    "AdmissionError",
    "IngestConfig",
    "IngestCore",
    "ProtocolError",
    "ReorderWindow",
    "StreamFaults",
    "decode_frame",
    "decode_json",
    "encode_frame",
    "encode_json",
    "encode_message",
    "read_message",
]


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
MSG_HELLO = 1  #: client -> server: open a stream (JSON config)
MSG_HELLO_OK = 2  #: server -> client: admitted (JSON: handle)
MSG_REJECT = 3  #: server -> client: admission rejected (JSON: reason)
MSG_FRAME = 4  #: client -> server: one captured frame (binary)
MSG_RESULT = 5  #: server -> client: per-frame result ack (JSON)
MSG_STATS = 6  #: either direction: stats request / reply (JSON)
MSG_HEALTH = 7  #: either direction: health request / reply (JSON)
MSG_BYE = 8  #: client -> server: graceful end of stream
MSG_BYE_OK = 9  #: server -> client: stream settled (JSON summary)
MSG_ERROR = 10  #: server -> client: stream failed (JSON reason)

_HEADER = struct.Struct(">I")
_FRAME_HEAD = struct.Struct(">IIHHI")

#: Refuse absurd lengths before allocating (64 MiB >> any 1080p frame).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed message on the wire."""


def encode_message(msg_type: int, body: bytes = b"") -> bytes:
    """Frame one message: u32 length | u8 type | body."""
    return _HEADER.pack(len(body) + 1) + bytes([msg_type]) + body


def encode_json(msg_type: int, payload: dict) -> bytes:
    return encode_message(msg_type, json.dumps(payload).encode("utf-8"))


def decode_json(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed JSON body: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("JSON body must be an object")
    return payload


def _truth_to_json(truth: Optional[Sequence[Detection]]) -> bytes:
    if truth is None:
        return b""
    items = [
        {
            "x": d.box.x,
            "y": d.box.y,
            "w": d.box.width,
            "h": d.box.height,
            "label": d.label,
            "score": d.score,
            "object_id": d.object_id,
        }
        for d in truth
    ]
    return json.dumps(items).encode("utf-8")


def _truth_from_json(blob: bytes) -> Optional[List[Detection]]:
    if not blob:
        return None
    items = json.loads(blob.decode("utf-8"))
    return [
        Detection(
            box=BoundingBox(d["x"], d["y"], d["w"], d["h"]),
            label=d.get("label", "object"),
            score=d.get("score", 1.0),
            object_id=d.get("object_id"),
        )
        for d in items
    ]


def encode_frame(
    handle: int,
    seq: int,
    frame: np.ndarray,
    truth: Optional[Sequence[Detection]] = None,
) -> bytes:
    """Encode one FRAME message (uint8 luma payload, raw bytes)."""
    if frame.dtype != np.uint8 or frame.ndim != 2:
        raise ProtocolError(
            f"frames on the wire are 2-D uint8 luma, got {frame.dtype} "
            f"ndim={frame.ndim}"
        )
    height, width = frame.shape
    truth_blob = _truth_to_json(truth)
    body = (
        _FRAME_HEAD.pack(handle, seq, height, width, len(truth_blob))
        + truth_blob
        + np.ascontiguousarray(frame).tobytes()
    )
    return encode_message(MSG_FRAME, body)


def decode_frame(
    body: bytes | memoryview,
) -> Tuple[int, int, np.ndarray, Optional[List[Detection]]]:
    """Decode a FRAME body to ``(handle, seq, frame_view, truth)``.

    The returned frame is a zero-copy uint8 view of ``body`` — the caller
    submits it straight into a transport ring slot (which copies it there)
    and must not retain the view past the buffer's lifetime.
    """
    view = memoryview(body)
    if len(view) < _FRAME_HEAD.size:
        raise ProtocolError(f"FRAME body too short ({len(view)} bytes)")
    handle, seq, height, width, truth_len = _FRAME_HEAD.unpack_from(view, 0)
    offset = _FRAME_HEAD.size
    if len(view) != offset + truth_len + height * width:
        raise ProtocolError(
            f"FRAME length mismatch: {len(view)} bytes for "
            f"{height}x{width} + {truth_len} truth"
        )
    truth = _truth_from_json(bytes(view[offset : offset + truth_len]))
    offset += truth_len
    frame = np.frombuffer(view, dtype=np.uint8, offset=offset).reshape(height, width)
    return handle, seq, frame, truth


def read_message(buffer: bytearray) -> Optional[Tuple[int, bytes]]:
    """Pop one complete ``(type, body)`` message off ``buffer``, if any.

    The incremental receive-side parser: append raw socket bytes to
    ``buffer``, call until it returns ``None``.
    """
    if len(buffer) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack_from(buffer, 0)
    if length < 1 or length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"bad message length {length}")
    if len(buffer) < _HEADER.size + length:
        return None
    msg_type = buffer[_HEADER.size]
    body = bytes(buffer[_HEADER.size + 1 : _HEADER.size + length])
    del buffer[: _HEADER.size + length]
    return msg_type, body


# ----------------------------------------------------------------------
# Reorder window
# ----------------------------------------------------------------------
class ReorderWindow:
    """Re-establishes source order for late / out-of-order / duplicate frames.

    Frames carry a source sequence number; the window buffers up to
    ``window`` out-of-order arrivals waiting for the missing ones.  When
    the buffer fills (or :meth:`flush` is called), the missing range is
    *sealed* as a gap: delivery resumes at the earliest buffered frame,
    which is flagged ``gap=True`` so the pipeline can force an I-frame —
    extrapolating across dropped frames would violate EVA²'s temporal
    assumption.  Duplicates and frames older than the delivery point are
    dropped (counted, never delivered twice).
    """

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError(f"reorder window must be >= 1, got {window}")
        self.window = window
        self.next_seq = 0
        self._buffer: Dict[int, object] = {}
        self.duplicates = 0
        self.late_drops = 0
        self.reordered = 0
        self.gaps = 0

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def push(self, seq: int, item: object) -> List[Tuple[int, object, bool]]:
        """Accept one arrival; return ``(seq, item, gap)`` ready in order."""
        if seq < self.next_seq:
            self.late_drops += 1
            return []
        if seq in self._buffer:
            self.duplicates += 1
            return []
        if seq != self.next_seq:
            self.reordered += 1
        self._buffer[seq] = item
        released = self._release_contiguous()
        while len(self._buffer) > self.window:
            # Stragglers kept the window full: seal the gap and move on.
            released.extend(self._seal_gap())
            released.extend(self._release_contiguous())
        return released

    def _release_contiguous(self) -> List[Tuple[int, object, bool]]:
        released: List[Tuple[int, object, bool]] = []
        while self.next_seq in self._buffer:
            released.append((self.next_seq, self._buffer.pop(self.next_seq), False))
            self.next_seq += 1
        return released

    def _seal_gap(self) -> List[Tuple[int, object, bool]]:
        earliest = min(self._buffer)
        self.gaps += 1
        self.next_seq = earliest + 1
        return [(earliest, self._buffer.pop(earliest), True)]

    def flush(self) -> List[Tuple[int, object, bool]]:
        """Release everything still buffered (end of stream), sealing gaps."""
        released = self._release_contiguous()
        while self._buffer:
            released.extend(self._seal_gap())
            released.extend(self._release_contiguous())
        return released


# ----------------------------------------------------------------------
# Ingestion core
# ----------------------------------------------------------------------
OVERLOAD_POLICIES = ("drop-oldest", "degrade")


class AdmissionError(RuntimeError):
    """The capacity budget rejected a new stream."""


@dataclass
class IngestConfig:
    """Knobs of the ingestion core (per server, applied per stream)."""

    #: Bounded ready-queue depth per stream (frames reordered and waiting
    #: to enter the execution core).
    queue_capacity: int = 32
    #: What to do when a stream's ready queue is full:
    #: ``"drop-oldest"`` drops the oldest queued frame (the drop becomes a
    #: gap — the next delivered frame forces an I-frame);
    #: ``"degrade"`` accepts the frame but defers controller-scheduled
    #: I-frames (widening the effective extrapolation window) until the
    #: backlog clears.
    overload_policy: str = "degrade"
    #: Out-of-order arrivals buffered while waiting for missing frames.
    reorder_window: int = 8
    #: Frames in flight inside the execution core per stream (beyond this
    #: the ready queue holds them — keeps shared-memory slots bounded).
    feed_depth: int = 8
    #: Whether to run capacity-budget admission control (needs a
    #: :class:`~repro.soc.frame_cost.CapacityModel`).
    admission: bool = True

    def __post_init__(self) -> None:
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {self.overload_policy!r}; "
                f"expected one of {OVERLOAD_POLICIES}"
            )
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.feed_depth < 1:
            raise ValueError("feed_depth must be >= 1")


@dataclass
class StreamFaults:
    """Per-stream fault/degradation counters (all observe-only)."""

    duplicates: int = 0
    late_drops: int = 0
    reordered: int = 0
    gaps: int = 0
    overload_drops: int = 0
    degraded_submits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "duplicates": self.duplicates,
            "late_drops": self.late_drops,
            "reordered": self.reordered,
            "gaps": self.gaps,
            "overload_drops": self.overload_drops,
            "degraded_submits": self.degraded_submits,
        }


class _IngestStream:
    """Server-side state of one admitted camera stream."""

    def __init__(self, stream_id: str, config: IngestConfig, demand) -> None:
        self.stream_id = stream_id
        self.config = config
        self.demand = demand
        self.reorder = ReorderWindow(config.reorder_window)
        #: Reordered frames ready to enter the execution core:
        #: (source_seq, frame, truth, gap).
        self.ready: Deque[Tuple[int, np.ndarray, object, bool]] = deque()
        #: A drop (gap or overload) happened after the last submitted
        #: frame: the next submit must force an I-frame.
        self.pending_gap = False
        self.faults = StreamFaults()
        #: Source seqs actually submitted to the pipeline, in order.
        self.accepted_seqs: List[int] = []
        self.frames_submitted = 0
        self.closed = False


class IngestCore:
    """Synchronous ingestion engine over one :class:`StreamMultiplexer`.

    Owns admission control, per-stream reordering, the bounded ready
    queues with their overload policies, and the feed loop that moves
    ready frames into the execution core.  The asyncio server is a thin
    I/O wrapper around exactly this object; the fault-injection tests
    drive it directly.

    Lifecycle: :meth:`open_stream` runs M/D/1 admission against the
    ``capacity`` model and registers the stream (raising
    :class:`AdmissionError` when the fleet would be overloaded),
    :meth:`push_frame` accepts a possibly out-of-order frame into the
    stream's :class:`ReorderWindow`, :meth:`pump` moves every ready frame
    into the execution core (applying the configured overload policy —
    ``drop-oldest`` or ``degrade`` — when a ready queue overflows), and
    :meth:`close_stream` seals remaining gaps and returns the stream's
    :class:`~repro.core.types.SequenceResult`.  :meth:`drain` /
    :meth:`finish` flush everything at shutdown; :meth:`stats` and
    :meth:`health` expose the counters the serve protocol reports.  All
    knobs live on :class:`IngestConfig`; the byte-level framing this
    engine sits behind is specified in ``docs/wire-protocol.md``.
    """

    def __init__(
        self,
        multiplexer: "StreamMultiplexer",
        *,
        capacity: "CapacityModel | None" = None,
        config: Optional[IngestConfig] = None,
        on_record: "Callable[[FrameRecord], None] | None" = None,
    ) -> None:
        self.multiplexer = multiplexer
        self.capacity = capacity
        self.config = config or IngestConfig()
        if self.config.admission and capacity is None:
            raise ValueError(
                "admission control needs a CapacityModel; pass capacity= or "
                "IngestConfig(admission=False)"
            )
        self._streams: Dict[str, _IngestStream] = {}
        self._on_record = on_record
        previous = multiplexer.on_record
        if previous is not None:  # pragma: no cover - defensive chaining

            def chained(record: FrameRecord) -> None:
                previous(record)
                self._record(record)

            multiplexer.on_record = chained
        else:
            multiplexer.on_record = self._record
        self._record_sink: List[FrameRecord] = []

    # -- observation ----------------------------------------------------
    def _record(self, record: FrameRecord) -> None:
        if self._on_record is not None:
            self._on_record(record)
        else:
            self._record_sink.append(record)

    def take_records(self) -> List[FrameRecord]:
        """Drain buffered frame records (no ``on_record`` callback mode)."""
        records, self._record_sink = self._record_sink, []
        return records

    # -- admission ------------------------------------------------------
    def admitted_demands(self) -> List[object]:
        return [s.demand for s in self._streams.values() if s.demand is not None]

    def projected_queueing(self) -> "QueueingEstimate | None":
        """Capacity-budget projection for the currently admitted set."""
        if self.capacity is None:
            return None
        return self.capacity.projection(
            [d for d in self.admitted_demands() if d is not None]
        )

    def open_stream(
        self,
        stream_id: str,
        *,
        width: int,
        height: int,
        fps: float = 30.0,
        window_size: int = 1,
        rois: int = 1,
        **mux_kwargs,
    ) -> None:
        """Admit and open one live stream (raises :class:`AdmissionError`).

        ``fps``/``window_size``/``rois`` describe the stream's projected
        demand for the capacity budget; extra keyword arguments go to
        :meth:`StreamMultiplexer.add_stream`.
        """
        if stream_id in self._streams:
            raise ValueError(f"stream '{stream_id}' already exists")
        demand = None
        if self.config.admission:
            from ..soc.frame_cost import StreamDemand

            demand = StreamDemand(fps=fps, window_size=window_size, rois=rois)
            admitted = [d for d in self.admitted_demands() if d is not None]
            if not self.capacity.admits(admitted, demand):
                projected = self.capacity.projection([*admitted, demand])
                raise AdmissionError(
                    f"stream '{stream_id}' rejected: projected backend "
                    f"utilization {projected.utilization:.3f} >= 1 "
                    f"({len(admitted)} streams admitted)"
                )
        self.multiplexer.add_stream(
            name=stream_id, width=width, height=height, **mux_kwargs
        )
        self._streams[stream_id] = _IngestStream(stream_id, self.config, demand)

    # -- frame path -----------------------------------------------------
    def _stream(self, stream_id: str) -> _IngestStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise KeyError(f"unknown stream '{stream_id}'") from None

    def push_frame(
        self,
        stream_id: str,
        seq: int,
        frame: np.ndarray,
        truth: Optional[Sequence[Detection]] = None,
    ) -> None:
        """One frame off the wire: reorder, queue under policy, feed."""
        stream = self._stream(stream_id)
        if stream.closed:
            raise RuntimeError(f"stream '{stream_id}' is closed")
        before_gaps = stream.reorder.gaps
        for rseq, item, gap in stream.reorder.push(seq, (frame, truth)):
            self._enqueue_ready(stream, rseq, item, gap)
        stream.faults.duplicates = stream.reorder.duplicates
        stream.faults.late_drops = stream.reorder.late_drops
        stream.faults.reordered = stream.reorder.reordered
        stream.faults.gaps += stream.reorder.gaps - before_gaps
        self._feed(stream)

    def _enqueue_ready(
        self, stream: _IngestStream, seq: int, item: object, gap: bool
    ) -> None:
        frame, truth = item
        if (
            len(stream.ready) >= self.config.queue_capacity
            and self.config.overload_policy == "drop-oldest"
        ):
            # Shed the oldest queued frame; its absence is a gap whatever
            # is submitted next must seal with an I-frame.  A gap the
            # dropped frame itself carried transfers the same way.
            stream.ready.popleft()
            stream.faults.overload_drops += 1
            stream.faults.gaps += 1
            if stream.ready:
                nseq, nframe, ntruth, _ = stream.ready[0]
                stream.ready[0] = (nseq, nframe, ntruth, True)
            else:
                stream.pending_gap = True
        # Under "degrade" the queue grows past capacity; the feed loop
        # tags the backlog as degraded instead of shedding it.
        stream.ready.append((seq, frame, truth, gap))

    def _feed(self, stream: _IngestStream) -> None:
        """Move ready frames into the execution core up to ``feed_depth``."""
        mux = self.multiplexer
        while stream.ready:
            try:
                in_flight = mux._executor.pending_for(stream.stream_id)
            except KeyError:  # pragma: no cover - finished underneath us
                break
            if in_flight >= self.config.feed_depth:
                break
            seq, frame, truth, gap = stream.ready.popleft()
            force = gap or stream.pending_gap
            stream.pending_gap = False
            tags: List[str] = []
            if force:
                tags.append("dropped-frame-gap")
            defer = False
            if (
                self.config.overload_policy == "degrade"
                and len(stream.ready) >= self.config.queue_capacity
            ):
                # Backlogged past capacity: widen the effective EW by
                # deferring controller-scheduled I-frames (forced ones,
                # like gap seals, still run).
                defer = True
                tags.append("queue-degrade")
                stream.faults.degraded_submits += 1
            try:
                mux.submit(
                    stream.stream_id,
                    frame,
                    truth=truth,
                    force_inference=force,
                    defer_inference=defer,
                    degradation=",".join(tags),
                )
            except StreamFailedError:
                stream.closed = True
                raise
            stream.accepted_seqs.append(seq)
            stream.frames_submitted += 1

    def pump(self) -> int:
        """One scheduling round: process frames, then refill from queues."""
        processed = self.multiplexer.pump()
        for stream in self._streams.values():
            if not stream.closed:
                try:
                    self._feed(stream)
                except StreamFailedError:
                    continue
        return processed

    # -- teardown -------------------------------------------------------
    def close_stream(self, stream_id: str) -> SequenceResult:
        """Flush, drain and finish one stream; other streams keep running.

        This is the graceful per-connection teardown (client BYE or
        disconnect): the reorder window is flushed (sealing trailing
        gaps), the ready queue feeds through, and the session closes.
        """
        stream = self._stream(stream_id)
        if not stream.closed:
            try:
                for rseq, item, gap in stream.reorder.flush():
                    self._enqueue_ready(stream, rseq, item, gap)
                while stream.ready:
                    # drain() frees in-flight slots so _feed can move the
                    # rest of the backlog in (feed_depth at a time).
                    self.multiplexer.drain()
                    self._feed(stream)
                self.multiplexer.drain()
            except StreamFailedError:
                pass
            stream.closed = True
        try:
            result = self.multiplexer.finish_stream(stream.stream_id)
        finally:
            del self._streams[stream_id]
        return result

    def abort_stream(self, stream_id: str) -> None:
        """Drop a failed/abandoned stream without draining it."""
        stream = self._streams.pop(stream_id, None)
        if stream is None:
            return
        stream.closed = True

    def drain(self) -> None:
        """Feed every queue through and drain the execution core."""
        for stream in self._streams.values():
            if stream.closed:
                continue
            for rseq, item, gap in stream.reorder.flush():
                self._enqueue_ready(stream, rseq, item, gap)
        moved = True
        while moved:
            self.multiplexer.drain()
            moved = False
            for stream in self._streams.values():
                if stream.closed or not stream.ready:
                    continue
                before = len(stream.ready)
                try:
                    self._feed(stream)
                except StreamFailedError:
                    continue
                moved = moved or len(stream.ready) < before

    def finish(self) -> Dict[str, SequenceResult]:
        """Graceful server drain: flush everything, settle the shared SoC.

        Returns per-stream results; streams lost to isolated failures are
        omitted (their reasons are in ``multiplexer.stream_failures``).
        """
        self.drain()
        results = self.multiplexer.finish()
        for stream in self._streams.values():
            stream.closed = True
        return results

    # -- introspection --------------------------------------------------
    @property
    def stream_ids(self) -> List[str]:
        return list(self._streams)

    def faults_for(self, stream_id: str) -> StreamFaults:
        return self._stream(stream_id).faults

    def accepted_seqs(self, stream_id: str) -> List[int]:
        """Source sequence numbers submitted to the pipeline, in order."""
        return list(self._stream(stream_id).accepted_seqs)

    def stats(self) -> Dict[str, object]:
        """Health/stats snapshot (the server's /stats endpoint body)."""
        projection = self.projected_queueing()
        streams = {}
        for stream_id, stream in self._streams.items():
            stats = self.multiplexer.stats_for(stream_id)
            streams[stream_id] = {
                "submitted": stats.frames_submitted,
                "processed": stats.frames_processed,
                "inference_frames": stats.inference_frames,
                "degraded_frames": stats.degraded_frames,
                "ready_queued": len(stream.ready),
                "reorder_buffered": stream.reorder.buffered,
                "faults": stream.faults.as_dict(),
                # Per-stage wall-clock seconds (stage profiler feed), so a
                # /stats poll shows where each stream's frame time goes.
                "stage_s": dict(stats.stage_s),
            }
        payload: Dict[str, object] = {
            "streams": streams,
            "stream_count": len(self._streams),
            "pending_frames": self.multiplexer.pending_frames,
            "failures": dict(self.multiplexer.stream_failures),
        }
        if projection is not None:
            payload["capacity"] = {
                "utilization": projection.utilization,
                "arrival_rate_hz": projection.arrival_rate_hz,
                "mean_wait_s": (
                    None
                    if projection.mean_wait_s == float("inf")
                    else projection.mean_wait_s
                ),
            }
        return payload

    def health(self) -> Dict[str, object]:
        projection = self.projected_queueing()
        overloaded = bool(projection is not None and projection.utilization >= 1.0)
        return {
            "status": "overloaded" if overloaded else "ok",
            "streams": len(self._streams),
            "pending_frames": self.multiplexer.pending_frames,
            "failed_streams": len(self.multiplexer.stream_failures),
        }
