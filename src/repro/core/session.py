"""Frame-at-a-time streaming sessions over the Euphrates pipeline.

The original API could only process pre-recorded whole sequences
(``EuphratesPipeline.run(sequence)``), which rules out the always-on usage
the paper targets: frames arriving one at a time from a live camera, many
cameras sharing one SoC.  :class:`EuphratesSession` extracts the per-frame
body of that monolithic loop — ISP, window-controller I/E decision, backend
inference or motion extrapolation, disagreement measurement, state pruning —
behind an incremental interface::

    session = pipeline.open_session(source=sequence)
    for _, frame in sequence.iter_frames():
        result = session.submit(frame)          # one FrameResult per frame
    sequence_result = session.finish()

``EuphratesPipeline.run`` is now a thin wrapper over exactly this loop, so
the streaming path is bit-identical to the batch path by construction.

Sessions come in two flavours:

* **engine-sharing** sessions reuse the pipeline's cached ISP/extrapolator
  and its backend/window controller — this is what ``run()`` uses, and only
  one may be open at a time;
* **standalone** sessions (the default from :meth:`open_session`) get their
  own ISP, extrapolator, backend copy and window-controller clone, so any
  number can run concurrently — the substrate of
  :class:`repro.core.streaming.StreamMultiplexer`.

A session may be bound to a :class:`~repro.video.sequence.VideoSequence`
(whose annotations feed the simulated-CNN backends' ground-truth oracle) or
opened on bare ``(width, height)`` dimensions, in which case per-frame truth
is supplied with each :meth:`EuphratesSession.submit` call and collected in a
:class:`StreamOracle` that mimics the minimal sequence interface the
backends consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from .extrapolation import MotionExtrapolator, RoiMotionState
from .profiler import StageProfiler
from .types import Detection, FrameKind, FrameResult, FrameTelemetry, SequenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isp.pipeline import ISPPipeline
    from ..video.sequence import VideoSequence
    from .backends import InferenceBackend
    from .window import WindowController


class SessionClosedError(RuntimeError):
    """Raised when submitting to (or finishing) an already-finished session."""


#: Minimum IoU for pairing an inferred box with a predicted one in the
#: disagreement metric; non-overlapping boxes are no evidence of a pair.
DISAGREEMENT_IOU_FLOOR = 1e-9


def prune_states(
    states: Dict[int, RoiMotionState], detections: Sequence[Detection]
) -> None:
    """Drop filter states made stale by a fresh inference result.

    An I-frame replaces the tracked detection set.  Anonymous states
    (negative keys are positional) never survive the replacement, and
    identified states survive only while their object id is still
    detected; anything else would seed the recursive filter of a new
    object with another object's motion history.
    """
    live_ids = {d.object_id for d in detections if d.object_id is not None}
    for key in [k for k in states if k < 0 or k not in live_ids]:
        del states[key]


def measure_disagreement(
    inferred: Sequence[Detection],
    predicted: Sequence[Detection],
    iou_floor: float = DISAGREEMENT_IOU_FLOOR,
) -> float:
    """Mean ``1 - IoU`` between inference results and extrapolated ones.

    Pairs are matched by object id when available; the remaining boxes
    are matched one-to-one, best IoU first, and only while they overlap
    at all.  When there is nothing to compare the disagreement is 0 (no
    evidence that extrapolation was wrong).
    """
    if not inferred or not predicted:
        return 0.0

    by_id = {d.object_id: d for d in predicted if d.object_id is not None}
    disagreements: List[float] = []
    anonymous_inferred: List[Detection] = []
    for detection in inferred:
        if detection.object_id is not None and detection.object_id in by_id:
            counterpart = by_id[detection.object_id]
            disagreements.append(1.0 - detection.box.iou(counterpart.box))
        else:
            anonymous_inferred.append(detection)

    pool = [d for d in predicted if d.object_id is None]
    pairs = sorted(
        (
            (detection.box.iou(candidate.box), i, j)
            for i, detection in enumerate(anonymous_inferred)
            for j, candidate in enumerate(pool)
        ),
        key=lambda item: item[0],
        reverse=True,
    )
    used_inferred: set = set()
    used_predicted: set = set()
    for iou, i, j in pairs:
        if iou < iou_floor:
            break
        if i in used_inferred or j in used_predicted:
            continue
        used_inferred.add(i)
        used_predicted.add(j)
        disagreements.append(1.0 - iou)

    if not disagreements:
        return 0.0
    return float(np.mean(disagreements))


class _TruthSeries:
    """Per-object box-per-frame view over a :class:`StreamOracle`.

    Implements just enough of the ``sequence.truth_for(object_id)`` list
    protocol (``[frame_index]``) for the tracking backends.
    """

    def __init__(self, oracle: "StreamOracle", object_id: int) -> None:
        self._oracle = oracle
        self._object_id = object_id

    def __getitem__(self, frame_index: int):
        truth = self._oracle.truth_at_frame(frame_index)
        for detection in truth:
            if detection.object_id == self._object_id:
                return detection.box
        return None


class StreamOracle:
    """Minimal sequence facade for sessions fed frame by frame.

    The simulated CNN backends model accuracy *relative to ground truth*, so
    they query their sequence for per-frame annotations.  A live stream has
    no pre-recorded sequence; instead the caller hands each frame's truth to
    :meth:`EuphratesSession.submit` and this oracle accumulates it, exposing
    the handful of accessors the backends actually touch (``width``,
    ``height``, ``name``, ``frame(0)``, ``truth_detections``, ``truth_for``,
    ``primary_object_id``, ``labels``).
    """

    #: How many recent frames' truth to retain.  Backends only ever query
    #: the frame currently being submitted, so an always-on stream must not
    #: accumulate truth without bound; a small window keeps late readers
    #: (diagnostics) working while bounding memory.
    TRUTH_WINDOW = 8

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        fps: float = 60.0,
        *,
        labels: Optional[Dict[int, str]] = None,
    ) -> None:
        self.name = name
        self.width = int(width)
        self.height = int(height)
        self.fps = fps
        #: Object-id -> class-label map.  Grows as truth is observed; may be
        #: primed up front (worker shards replaying a known sequence prime
        #: it with the sequence's full label map).
        self.labels: Dict[int, str] = dict(labels or {})
        self._truth: Dict[int, List[Detection]] = {}
        self._next_frame = 0
        self._primary_object_id: Optional[int] = None
        self._first_frame: Optional[np.ndarray] = None

    # -- feeding -------------------------------------------------------
    def observe(
        self,
        frame_index: int,
        frame: np.ndarray,
        truth: Optional[Sequence[Detection]],
    ) -> None:
        """Record one submitted frame's annotations (called by the session)."""
        if frame_index != self._next_frame:
            raise ValueError(
                f"frames must be observed in order (got {frame_index}, "
                f"expected {self._next_frame})"
            )
        detections = list(truth) if truth else []
        self._truth[frame_index] = detections
        self._next_frame = frame_index + 1
        for detection in detections:
            if detection.object_id is not None:
                if self._primary_object_id is None:
                    self._primary_object_id = detection.object_id
                self.labels.setdefault(detection.object_id, detection.label)
        if frame_index == 0:
            # Copy, never reference: a live capture loop typically reuses
            # one buffer per frame, which would silently rewrite "frame 0".
            self._first_frame = np.array(frame, copy=True)
        stale = frame_index - self.TRUTH_WINDOW
        if stale in self._truth:
            del self._truth[stale]

    def forget(self, frame_index: int) -> None:
        """Roll back the most recent :meth:`observe` (failed submit).

        Keeps the oracle in sync with the session's frame counter so the
        caller can retry the frame (e.g. resubmitting with the truth a
        tracking backend needed to start).
        """
        if frame_index == self._next_frame - 1:
            self._truth.pop(frame_index, None)
            self._next_frame = frame_index
            if frame_index == 0:
                self._first_frame = None
                self._primary_object_id = None

    # -- the sequence protocol consumed by the backends ----------------
    def frame(self, index: int) -> np.ndarray:
        if index != 0 or self._first_frame is None:
            raise ValueError("a stream oracle only retains the first frame")
        return self._first_frame

    def truth_at_frame(self, frame_index: int) -> List[Detection]:
        if frame_index >= self._next_frame:
            raise ValueError(
                f"no truth observed yet for frame {frame_index} "
                f"({self._next_frame} frames submitted)"
            )
        try:
            return self._truth[frame_index]
        except KeyError:
            raise ValueError(
                f"truth for frame {frame_index} was evicted (only the last "
                f"{self.TRUTH_WINDOW} frames are retained)"
            ) from None

    def truth_detections(self, frame_index: int) -> List[Detection]:
        return list(self.truth_at_frame(frame_index))

    def truth_for(self, object_id: int) -> _TruthSeries:
        return _TruthSeries(self, object_id)

    @property
    def primary_object_id(self) -> int:
        if self._primary_object_id is None:
            raise ValueError(f"stream '{self.name}' has no annotated objects yet")
        return self._primary_object_id


@dataclass
class SessionStats:
    """Lightweight per-session counters kept up to date on every submit."""

    frames: int = 0
    inference_frames: int = 0
    extrapolation_frames: int = 0
    #: Extrapolation operations spent by this session so far.
    extrapolation_ops: float = 0.0

    @property
    def inference_rate(self) -> float:
        return self.inference_frames / self.frames if self.frames else 0.0


class EuphratesSession:
    """Incremental frame-at-a-time execution of the Euphrates algorithm.

    Do not construct directly; use :meth:`EuphratesPipeline.open_session`.
    """

    def __init__(
        self,
        *,
        name: str,
        isp: "ISPPipeline",
        extrapolator: MotionExtrapolator,
        backend: "InferenceBackend",
        window_controller: "WindowController",
        source: "VideoSequence | StreamOracle | None" = None,
        oracle: Optional[StreamOracle] = None,
        on_finish: Optional[Callable[["EuphratesSession"], None]] = None,
        disagreement: Optional[
            Callable[[Sequence[Detection], Sequence[Detection]], float]
        ] = None,
        prune: Optional[
            Callable[[Dict[int, RoiMotionState], Sequence[Detection]], None]
        ] = None,
    ) -> None:
        self.name = name
        self._isp = isp
        self._extrapolator = extrapolator
        self._backend = backend
        self._controller = window_controller
        self._source = source
        self._oracle = oracle
        self._on_finish = on_finish
        # The feedback metric and state-pruning policy are injectable so a
        # pipeline subclass that customizes them keeps working through the
        # session-backed run() path.
        self._measure_disagreement = disagreement or measure_disagreement
        self._prune_states = prune or prune_states
        self._ops_at_open = extrapolator.total_operations
        # Per-stream algorithm state, previously locals of the run() loop.
        self._states: Dict[int, RoiMotionState] = {}
        self._last_detections: List[Detection] = []
        self._frames_since_inference = 0
        self._frames: List[FrameResult] = []
        # Observe-only hardware telemetry, one event per submitted frame.
        # Consumed by SoC cost meters; recording it never changes outputs.
        self._telemetry: List[FrameTelemetry] = []
        self._next_index = 0
        self._closed = False
        # Sequence-bound sessions start their backend at open (the pipeline
        # does it); oracle-fed ones defer until the first frame's truth is in.
        self._backend_started = oracle is None
        self.stats = SessionStats()
        #: Aggregated per-stage wall-clock profile of every frame this
        #: session has processed (observe-only, like the telemetry feed).
        self.profiler = StageProfiler()
        # Whether the ISP can ever produce a motion field for this session;
        # used by next_frame_kind() to predict the I/E decision.
        config = isp.config
        self._motion_possible = bool(
            config.expose_motion_vectors and config.temporal_denoise
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def frames_submitted(self) -> int:
        return self._next_index

    @property
    def window_controller(self) -> "WindowController":
        return self._controller

    @property
    def backend(self) -> "InferenceBackend":
        return self._backend

    def next_frame_kind(self, *, assume_defer: bool = False) -> FrameKind:
        """Predict whether the next :meth:`submit` will infer or extrapolate.

        The prediction is exact for same-sized frames: the only inputs to
        the I/E decision that are unknown before the ISP runs are a
        mid-stream frame-size change (which resets the denoiser's reference
        and forces an I-frame) and an explicit ``force_inference``.  The
        multiplexer uses this to interleave cheap E-frames while batching
        expensive I-frames.  ``assume_defer`` predicts the decision as if
        the frame were submitted with ``defer_inference=True`` (the serving
        layer's ``degrade`` overload policy).
        """
        if self._closed:
            raise SessionClosedError(f"session '{self.name}' is finished")
        if self._next_index == 0 or not self._last_detections:
            return FrameKind.INFERENCE
        if not self._motion_possible:
            return FrameKind.INFERENCE
        if self._controller.should_infer(self._frames_since_inference):
            return FrameKind.EXTRAPOLATION if assume_defer else FrameKind.INFERENCE
        return FrameKind.EXTRAPOLATION

    # ------------------------------------------------------------------
    # The per-frame body of the Euphrates algorithm
    # ------------------------------------------------------------------
    def submit(
        self,
        frame: np.ndarray,
        *,
        truth: Optional[Sequence[Detection]] = None,
        force_inference: bool = False,
        defer_inference: bool = False,
        degradation: str = "",
    ) -> FrameResult:
        """Process one captured frame and return its :class:`FrameResult`.

        ``truth`` feeds the ground-truth oracle of dimension-bound sessions
        (ignored, and rejected, when the session is bound to an annotated
        source sequence).  ``force_inference`` turns this frame into an
        I-frame regardless of the window controller — a mid-stream reset,
        e.g. after a scene cut signalled by the application.
        ``defer_inference`` does the opposite under overload: a controller-
        scheduled inference is postponed (the window effectively widens) so
        the frame extrapolates instead of stalling the queue; frames that
        *must* infer (first frame, no motion field, explicit force) still
        do.  ``degradation`` tags the emitted telemetry event with the
        serving-layer context that requested the special handling.
        """
        if self._closed:
            raise SessionClosedError(f"session '{self.name}' is finished")
        frame_index = self._next_index

        if self._oracle is not None:
            self._oracle.observe(frame_index, frame, truth)
            try:
                return self._process(
                    frame_index, frame, force_inference, defer_inference, degradation
                )
            except BaseException:
                # Keep the oracle in lockstep with the frame counter so the
                # caller can retry (e.g. resubmitting with the truth a tracking
                # backend needed to start).  If the ISP already ran, its
                # temporal reference has advanced and a retry is functional
                # but not bit-exact — failures before the ISP (backend
                # start, bad truth) retry cleanly.
                self._oracle.forget(frame_index)
                raise
        if truth is not None:
            raise ValueError(
                "per-frame truth is only accepted by sessions opened without "
                "a source sequence"
            )
        return self._process(
            frame_index, frame, force_inference, defer_inference, degradation
        )

    def _process(
        self,
        frame_index: int,
        frame: np.ndarray,
        force_inference: bool,
        defer_inference: bool = False,
        degradation: str = "",
    ) -> FrameResult:
        """The per-frame algorithm body (split out for submit's rollback)."""
        frame_start = time.perf_counter()
        ops_before = self._extrapolator.total_operations
        if not self._backend_started:
            # Dimension-bound sessions defer backend start until the first
            # frame so the oracle already holds that frame's annotations
            # (tracking backends read the first-frame box at start).
            self._backend.start_sequence(self._source)
            self._backend_started = True

        isp_start = time.perf_counter()
        processed = self._isp.process_luma(frame, frame_index)
        isp_s = time.perf_counter() - isp_start
        motion_field = processed.motion_field

        can_extrapolate = motion_field is not None and bool(self._last_detections)
        controller_wants_inference = self._controller.should_infer(
            self._frames_since_inference
        )
        must_infer = (
            force_inference
            or frame_index == 0
            or not can_extrapolate
            or (controller_wants_inference and not defer_inference)
        )
        if defer_inference and controller_wants_inference and not must_infer:
            # The overload policy suppressed a scheduled I-frame; record the
            # widened window in telemetry so degradation stays observable.
            degradation = (
                f"{degradation},deferred-inference"
                if degradation
                else "deferred-inference"
            )

        extrapolation_s = 0.0
        inference_s = 0.0
        if must_infer:
            predicted = None
            if can_extrapolate:
                stage_start = time.perf_counter()
                predicted = self._extrapolator.extrapolate_detections(
                    self._last_detections, motion_field, self._states
                )
                extrapolation_s += time.perf_counter() - stage_start
            stage_start = time.perf_counter()
            detections = self._backend.infer(frame_index, processed.luma, self._source)
            inference_s = time.perf_counter() - stage_start
            if predicted is not None:
                disagreement = self._measure_disagreement(detections, predicted)
                self._controller.observe_disagreement(disagreement)
            self._prune_states(self._states, detections)
            kind = FrameKind.INFERENCE
            self._frames_since_inference = 0
            self.stats.inference_frames += 1
        else:
            stage_start = time.perf_counter()
            detections = self._extrapolator.extrapolate_detections(
                self._last_detections, motion_field, self._states
            )
            extrapolation_s += time.perf_counter() - stage_start
            kind = FrameKind.EXTRAPOLATION
            self._frames_since_inference += 1
            self.stats.extrapolation_frames += 1

        self._last_detections = detections
        result = FrameResult(
            frame_index=frame_index,
            kind=kind,
            detections=list(detections),
            window_size=self._controller.current_window,
        )
        self._frames.append(result)
        denoise = (
            self._isp.denoise_stage if self._isp.config.temporal_denoise else None
        )
        record = FrameTelemetry(
            frame_index=frame_index,
            kind=kind,
            pixels=int(frame.size),
            rois=len(detections),
            motion_ops=float(processed.motion_ops),
            extrapolation_ops=float(
                self._extrapolator.total_operations - ops_before
            ),
            stream=self.name,
            degradation=degradation,
            isp_s=isp_s,
            motion_search_s=denoise.last_motion_s if denoise else 0.0,
            denoise_blend_s=denoise.last_blend_s if denoise else 0.0,
            extrapolation_s=extrapolation_s,
            inference_s=inference_s,
            total_s=time.perf_counter() - frame_start,
        )
        self._telemetry.append(record)
        self.profiler.observe(record)
        self._next_index += 1
        self.stats.frames += 1
        self.stats.extrapolation_ops = (
            self._extrapolator.total_operations - self._ops_at_open
        )
        return result

    def take_results(self) -> List[FrameResult]:
        """Drain the per-frame results accumulated since the last call.

        Always-on streams never :meth:`finish`, so without draining the
        result list would grow for the lifetime of the camera; a live
        consumer calls this periodically and the session's memory stays
        bounded (``stats`` keeps counting across drains).  The telemetry
        buffer grows alongside and is drained separately — pair this with
        :meth:`take_telemetry` in always-on loops.  Results drained here
        are no longer part of the :class:`SequenceResult` that a later
        :meth:`finish` returns.
        """
        if self._closed:
            raise SessionClosedError(f"session '{self.name}' is finished")
        taken = self._frames
        self._frames = []
        return taken

    def take_telemetry(self) -> List[FrameTelemetry]:
        """Drain the per-frame hardware telemetry accumulated so far.

        The streaming multiplexer (and any live energy consumer) drains
        this after every submit to feed a :class:`repro.soc.frame_cost.CostMeter`;
        like :meth:`take_results`, draining keeps an always-on session's
        memory bounded.  Events drained here no longer appear in the
        :class:`~repro.core.types.SequenceResult` a later :meth:`finish`
        returns.
        """
        if self._closed:
            raise SessionClosedError(f"session '{self.name}' is finished")
        taken = self._telemetry
        self._telemetry = []
        return taken

    def finish(self) -> SequenceResult:
        """Close the session and return the (un-drained) per-frame results."""
        if self._closed:
            raise SessionClosedError(f"session '{self.name}' is already finished")
        self._closed = True
        if self._on_finish is not None:
            self._on_finish(self)
        return SequenceResult(
            sequence_name=self.name,
            frames=self._frames,
            telemetry=self._telemetry,
        )
