"""Low-overhead per-stage wall-clock aggregation over :class:`FrameTelemetry`.

Sessions stamp per-stage timings onto every telemetry record (a handful of
``time.perf_counter()`` pairs per frame — well under a microsecond against
frame paths measured in milliseconds).  :class:`StageProfiler` folds those
records into per-kind (I-frame vs E-frame) totals that the ``profile``
subcommand, the pipeline bench and the multiplexer stats all render.

The profiler reads the timing fields with ``getattr`` defaults so it also
accepts telemetry produced by older emitters (worker shards running a
previous build, pickled records) — missing stages simply read as zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .types import FrameKind, FrameTelemetry

#: Stage display order.  ``other`` is the residual: total frame time minus
#: every attributed stage (controller logic, oracle bookkeeping, dispatch).
STAGE_NAMES = (
    "isp_other",
    "motion_search",
    "denoise_blend",
    "extrapolation",
    "inference",
    "other",
)

#: FrameTelemetry field backing each directly-measured stage.
_STAGE_FIELDS: Dict[str, str] = {
    "motion_search": "motion_search_s",
    "denoise_blend": "denoise_blend_s",
    "extrapolation": "extrapolation_s",
    "inference": "inference_s",
}


def stage_seconds(record: FrameTelemetry) -> Dict[str, float]:
    """Decompose one telemetry record into per-stage seconds.

    ``isp_other`` is the ISP time not attributed to motion search or the
    denoise blend (raw-stage processing, quantization, frame commit);
    ``other`` is whatever the whole-frame clock saw beyond every stage.
    Both are clamped at zero so clock jitter never produces negative bars.
    """
    isp_s = getattr(record, "isp_s", 0.0)
    total_s = getattr(record, "total_s", 0.0)
    seconds = {
        name: float(getattr(record, field_name, 0.0))
        for name, field_name in _STAGE_FIELDS.items()
    }
    seconds["isp_other"] = max(
        0.0, isp_s - seconds["motion_search"] - seconds["denoise_blend"]
    )
    attributed = isp_s + seconds["extrapolation"] + seconds["inference"]
    seconds["other"] = max(0.0, total_s - attributed)
    return seconds


@dataclass
class StageSummary:
    """Aggregated stage timings for one frame kind."""

    kind: str
    frames: int = 0
    total_s: float = 0.0
    stage_totals: Dict[str, float] = field(
        default_factory=lambda: dict.fromkeys(STAGE_NAMES, 0.0)
    )

    @property
    def mean_total_s(self) -> float:
        return self.total_s / self.frames if self.frames else 0.0

    @property
    def fps(self) -> float:
        return 1.0 / self.mean_total_s if self.mean_total_s > 0 else 0.0

    def rows(self) -> List[dict]:
        """Per-stage mean/share rows in display order (zero stages omitted)."""
        rows = []
        for name in STAGE_NAMES:
            total = self.stage_totals[name]
            if total <= 0.0 and name != "other":
                continue
            rows.append(
                {
                    "stage": name,
                    "total_s": total,
                    "mean_s": total / self.frames if self.frames else 0.0,
                    "share": total / self.total_s if self.total_s > 0 else 0.0,
                }
            )
        return rows


class StageProfiler:
    """Accumulates per-stage seconds from telemetry records, split by kind."""

    def __init__(self) -> None:
        self._summaries = {
            "I": StageSummary(kind="I"),
            "E": StageSummary(kind="E"),
        }

    def observe(self, record: FrameTelemetry) -> None:
        kind = "E" if record.kind is FrameKind.EXTRAPOLATION else "I"
        summary = self._summaries[kind]
        summary.frames += 1
        summary.total_s += float(getattr(record, "total_s", 0.0))
        for name, seconds in stage_seconds(record).items():
            summary.stage_totals[name] += seconds

    def merge(self, other: "StageProfiler") -> None:
        for kind, summary in other._summaries.items():
            mine = self._summaries[kind]
            mine.frames += summary.frames
            mine.total_s += summary.total_s
            for name, seconds in summary.stage_totals.items():
                mine.stage_totals[name] += seconds

    def summary(self, kind: str) -> StageSummary:
        """The aggregate for ``kind`` (``"I"`` or ``"E"``)."""
        return self._summaries[kind]

    @property
    def frames(self) -> int:
        return sum(summary.frames for summary in self._summaries.values())

    def mean_seconds(self, kind: str | None = None) -> Dict[str, float]:
        """Mean seconds per frame per stage (over both kinds by default)."""
        if kind is not None:
            summaries = [self._summaries[kind]]
        else:
            summaries = list(self._summaries.values())
        frames = sum(summary.frames for summary in summaries)
        means: Dict[str, float] = {}
        for name in STAGE_NAMES:
            total = sum(summary.stage_totals[name] for summary in summaries)
            means[name] = total / frames if frames else 0.0
        return means


__all__ = ["STAGE_NAMES", "StageProfiler", "StageSummary", "stage_seconds"]
