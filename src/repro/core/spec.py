"""One typed, frozen description of a swept pipeline configuration.

Before :class:`PipelineSpec` existed, the tunable knobs of the pipeline
(``extrapolation_window``, ``block_size``, ``search_range``,
``exhaustive_search``, ``search_policy``, ``sub_roi_grid``,
``expose_motion_vectors``) were threaded as loose keyword arguments through
three independent layers — ``build_pipeline``, the harness
:class:`~repro.harness.runner.SweepRunner`, and the CLI — each with its own
defaults and its own ad-hoc cache key.  A spec collapses all of that into a
single hashable value object:

* :meth:`PipelineSpec.build` constructs the pipeline (what ``build_pipeline``
  used to do);
* :meth:`PipelineSpec.cache_key` is the canonical memoization key the sweep
  harness stores results under;
* :meth:`PipelineSpec.to_cli_args` / :meth:`PipelineSpec.from_cli_args`
  round-trip a spec through the command line, so a result's provenance can be
  reproduced by pasting the printed flags back into the harness.

The spec also carries *execution* knobs (``workers``, ``transport``) that
select where sessions run — serial, or sharded over worker processes via
:class:`~repro.core.executor.ShardedExecutor`.  Execution knobs never change
outputs (sharded results are bit-identical to serial, property-tested), so
they are excluded from :meth:`PipelineSpec.cache_key`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, List, Tuple, Union

from ..isp.framebuffer import parse_frame_format, spell_frame_format
from ..motion.block_matching import BlockMatchingConfig, SearchPolicy, SearchStrategy
from ..motion.kernels import KERNEL_BACKENDS
from .extrapolation import ExtrapolationConfig
from .window import (
    AdaptiveWindowController,
    ConstantWindowController,
    WindowController,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..soc.config import SoCConfig
    from ..soc.soc import VisionSoC
    from .backends import InferenceBackend
    from .pipeline import EuphratesConfig, EuphratesPipeline

#: Hosts the E-frame extrapolation algorithm can run on: the dedicated
#: motion-controller IP (the Euphrates design) or the CPU cluster (the
#: EW-N@CPU software baseline of Fig. 9b).
EXTRAPOLATION_HOSTS = ("mc", "cpu")

#: Window-mode spellings accepted for the adaptive (EW-A) controller.
_ADAPTIVE_ALIASES = {"adaptive", "ew-a", "a"}


def normalize_window(window: Union[int, str]) -> Union[int, str]:
    """Normalize a window knob to an ``int`` or the string ``"adaptive"``."""
    if isinstance(window, str):
        lowered = window.lower()
        if lowered in _ADAPTIVE_ALIASES:
            return "adaptive"
        try:
            return int(lowered)
        except ValueError:
            raise ValueError(f"unknown window mode '{window}'") from None
    return int(window)


@dataclass(frozen=True)
class PipelineSpec:
    """Every knob the benchmarks and the harness sweep, in one frozen object."""

    #: Constant window size (int) or ``"adaptive"`` for the EW-A controller.
    extrapolation_window: Union[int, str] = 2
    #: Macroblock size of the ISP's block-matching motion estimation.
    block_size: int = 16
    #: Block-matching search range in pixels.
    search_range: int = 7
    #: Exhaustive search instead of the three-step search.
    exhaustive_search: bool = False
    #: Exhaustive-search candidate-scan policy
    #: (``full``/``spiral``/``pruned``/``histogram``).
    search_policy: str = "pruned"
    #: SAD kernel backend: ``numpy`` (the default and the bit-exact oracle)
    #: or ``numba`` (compiled; degrades to numpy when Numba is absent).
    #: All backends are bit-identical, but the knob is part of
    #: :meth:`cache_key` anyway so cached artifacts record which backend
    #: actually produced them.
    kernel_backend: str = "numpy"
    #: Fixed-point format of the ISP datapath: ``qM.F`` (e.g. the default
    #: ``q8.4``) quantizes every stage output onto that lattice; ``float``
    #: restores the unquantized float64 datapath.  A vision knob (it changes
    #: the committed frames, hence the motion fields), so it is part of
    #: :meth:`cache_key`.
    frame_format: str = "q8.4"
    #: Sub-ROI grid for deformation handling; (1, 1) disables it.
    sub_roi_grid: Tuple[int, int] = (2, 2)
    #: Euphrates ISP augmentation: expose motion vectors to the backend SoC.
    expose_motion_vectors: bool = True
    #: The modeled SoC this pipeline's cost is priced on: a named capture
    #: preset (``default``/``1080p30``/``720p60``/...) or ``WxH@FPS``.
    #: Purely a hardware-model knob — it never changes pipeline outputs.
    soc_config: str = "default"
    #: Where E-frame extrapolation is hosted when pricing energy: the
    #: dedicated motion-controller IP (``mc``) or software on the CPU
    #: cluster (``cpu``, the Fig. 9b EW-N@CPU baseline).
    extrapolation_host: str = "mc"
    #: Worker shards for dataset runs and the stream multiplexer; 1 keeps
    #: everything in-process (the bit-identical serial path).
    workers: int = 1
    #: Frame transport between client and shards: ``auto`` (shared memory
    #: when workers > 1), ``shm``, ``inproc``, or ``pickle`` (the legacy
    #: whole-sequence ProcessPoolExecutor fallback in ``run_dataset``).
    transport: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "extrapolation_window", normalize_window(self.extrapolation_window)
        )
        if isinstance(self.extrapolation_window, int) and self.extrapolation_window < 1:
            raise ValueError("extrapolation_window must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.search_range < 0:
            raise ValueError("search_range must be >= 0")
        object.__setattr__(self, "search_policy", SearchPolicy(self.search_policy).value)
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend '{self.kernel_backend}' "
                f"(expected one of {KERNEL_BACKENDS})"
            )
        # Normalize (and validate) the frame-format spelling so equal
        # lattices always hash and cache identically.
        object.__setattr__(
            self, "frame_format", spell_frame_format(parse_frame_format(self.frame_format))
        )
        grid = tuple(int(v) for v in self.sub_roi_grid)
        if len(grid) != 2 or grid[0] <= 0 or grid[1] <= 0:
            raise ValueError("sub_roi_grid must be two positive integers")
        object.__setattr__(self, "sub_roi_grid", grid)
        if self.extrapolation_host not in EXTRAPOLATION_HOSTS:
            raise ValueError(
                f"unknown extrapolation host '{self.extrapolation_host}' "
                f"(expected one of {EXTRAPOLATION_HOSTS})"
            )
        # Fail loudly on bad SoC names at construction, like every other
        # knob (the import is deferred: soc depends on core, not vice versa).
        from ..soc.config import resolve_soc_config

        resolve_soc_config(self.soc_config)
        # Execution knobs share the executor's validation.
        from .executor import ExecutionSpec

        ExecutionSpec(workers=self.workers, transport=self.transport)

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs: object) -> "PipelineSpec":
        """Build a spec from the legacy ``build_pipeline`` keyword arguments.

        Unknown keywords raise :class:`TypeError`, exactly like the old
        function signature did, so typos keep failing loudly.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise TypeError(
                f"unknown pipeline option(s): {', '.join(sorted(map(str, unknown)))}"
            )
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_preset(cls, name: str, **overrides: object) -> "PipelineSpec":
        """Build a named spec preset (see ``repro.soc.config.TUNED_SPEC_PRESETS``).

        Presets are configurations the design-space autotuner
        (``python -m repro.harness tune``) found Pareto-optimal; each entry
        records plain spec kwargs, so a preset composes with explicit
        ``overrides`` exactly like :meth:`from_kwargs`.
        """
        from ..soc.config import TUNED_SPEC_PRESETS

        try:
            kwargs = dict(TUNED_SPEC_PRESETS[name])
        except KeyError:
            presets = ", ".join(sorted(TUNED_SPEC_PRESETS))
            raise ValueError(
                f"unknown spec preset '{name}' (expected one of: {presets})"
            ) from None
        kwargs.update(overrides)
        return cls.from_kwargs(**kwargs)

    @classmethod
    def add_cli_options(
        cls, parser: argparse.ArgumentParser, include_window: bool = True
    ) -> None:
        """Register one CLI flag per spec field on ``parser``.

        The flags are the inverse of :meth:`to_cli_args`; parse them back
        with :meth:`from_cli_args`.  ``include_window=False`` omits the
        ``--window`` flag for tools (like the experiment harness) that sweep
        the window themselves.
        """
        defaults = cls()
        parser.add_argument(
            "--spec-preset",
            dest="spec_preset",
            default=None,
            metavar="NAME",
            help="start from a named tuned spec preset (see "
            "repro.soc.config.TUNED_SPEC_PRESETS / 'list --json'); "
            "explicit spec flags override the preset's fields",
        )
        if include_window:
            parser.add_argument(
                "--window",
                dest="spec_window",
                default=str(defaults.extrapolation_window),
                metavar="N|adaptive",
                help="extrapolation window: a constant size or 'adaptive' "
                f"(default: {defaults.extrapolation_window})",
            )
        parser.add_argument(
            "--block-size",
            dest="spec_block_size",
            type=int,
            default=defaults.block_size,
            help=f"macroblock size for motion estimation (default: {defaults.block_size})",
        )
        parser.add_argument(
            "--search-range",
            dest="spec_search_range",
            type=int,
            default=defaults.search_range,
            help=f"block-matching search range in pixels (default: {defaults.search_range})",
        )
        parser.add_argument(
            "--exhaustive-search",
            dest="spec_exhaustive_search",
            action="store_true",
            default=defaults.exhaustive_search,
            help="use exhaustive search instead of three-step search",
        )
        parser.add_argument(
            "--search-policy",
            dest="spec_search_policy",
            choices=[policy.value for policy in SearchPolicy],
            default=defaults.search_policy,
            help="exhaustive-search candidate-scan policy; all policies are "
            f"result-identical (default: {defaults.search_policy})",
        )
        parser.add_argument(
            "--kernel-backend",
            dest="spec_kernel_backend",
            choices=list(KERNEL_BACKENDS),
            default=defaults.kernel_backend,
            help="SAD kernel backend; numba degrades to numpy when Numba is "
            f"absent, and all backends are bit-identical (default: {defaults.kernel_backend})",
        )
        parser.add_argument(
            "--frame-format",
            dest="spec_frame_format",
            default=defaults.frame_format,
            metavar="qM.F|float",
            help="fixed-point format of the ISP datapath, e.g. q8.4; 'float' "
            f"selects the unquantized float64 path (default: {defaults.frame_format})",
        )
        parser.add_argument(
            "--sub-roi-grid",
            dest="spec_sub_roi_grid",
            default="x".join(str(v) for v in defaults.sub_roi_grid),
            metavar="RxC",
            help="sub-ROI grid for deformation handling, e.g. 2x2; 1x1 disables "
            f"(default: {'x'.join(str(v) for v in defaults.sub_roi_grid)})",
        )
        parser.add_argument(
            "--no-motion-vectors",
            dest="spec_expose_motion_vectors",
            action="store_false",
            default=defaults.expose_motion_vectors,
            help="model a conventional ISP that discards its motion vectors "
            "(every frame becomes an I-frame)",
        )
        parser.add_argument(
            "--soc-config",
            dest="spec_soc_config",
            default=defaults.soc_config,
            metavar="NAME|WxH@FPS",
            help="modeled SoC capture setting for energy pricing: a preset "
            "name (default, 1080p60, 1080p30, 720p60, 720p30, 4k30) or an "
            f"explicit WIDTHxHEIGHT@FPS (default: {defaults.soc_config})",
        )
        parser.add_argument(
            "--extrapolation-host",
            dest="spec_extrapolation_host",
            choices=list(EXTRAPOLATION_HOSTS),
            default=defaults.extrapolation_host,
            help="where E-frame extrapolation runs when pricing energy: the "
            "motion-controller IP or software on the CPU cluster "
            f"(default: {defaults.extrapolation_host})",
        )
        # Named --exec-workers (not --workers): harness tools own a
        # --workers flag of their own for dataset-level parallelism.
        parser.add_argument(
            "--exec-workers",
            dest="spec_workers",
            type=int,
            default=defaults.workers,
            help="worker shards for dataset runs and stream serving; 1 stays "
            f"in-process (default: {defaults.workers})",
        )
        from .executor import TRANSPORTS

        parser.add_argument(
            "--transport",
            dest="spec_transport",
            choices=list(TRANSPORTS),
            default=defaults.transport,
            help="frame transport between client and worker shards "
            f"(default: {defaults.transport})",
        )

    @classmethod
    def from_cli_args(cls, args: argparse.Namespace) -> "PipelineSpec":
        """Build a spec from a namespace parsed with :meth:`add_cli_options`.

        With ``--spec-preset`` the named preset supplies the base values and
        any spec flag whose parsed value differs from the built-in default
        overrides the corresponding preset field.
        """
        rows, _, cols = str(args.spec_sub_roi_grid).partition("x")
        try:
            grid = (int(rows), int(cols))
        except ValueError:
            raise ValueError(
                f"malformed --sub-roi-grid '{args.spec_sub_roi_grid}' (expected RxC)"
            ) from None
        defaults = cls()
        kwargs = {
            "extrapolation_window": normalize_window(
                getattr(args, "spec_window", defaults.extrapolation_window)
            ),
            "block_size": args.spec_block_size,
            "search_range": args.spec_search_range,
            "exhaustive_search": args.spec_exhaustive_search,
            "search_policy": args.spec_search_policy,
            "kernel_backend": getattr(
                args, "spec_kernel_backend", defaults.kernel_backend
            ),
            "frame_format": getattr(args, "spec_frame_format", defaults.frame_format),
            "sub_roi_grid": grid,
            "expose_motion_vectors": args.spec_expose_motion_vectors,
            "soc_config": args.spec_soc_config,
            "extrapolation_host": args.spec_extrapolation_host,
            "workers": getattr(args, "spec_workers", defaults.workers),
            "transport": getattr(args, "spec_transport", defaults.transport),
        }
        preset = getattr(args, "spec_preset", None)
        if preset:
            overrides = {
                name: value
                for name, value in kwargs.items()
                if value != getattr(defaults, name)
            }
            return cls.from_preset(preset, **overrides)
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_cli_args(self) -> List[str]:
        """The CLI flags that reproduce this spec (inverse of CLI parsing).

        Only non-default values are emitted, so the common specs print
        compactly; ``PipelineSpec.from_cli_args`` on a parser populated by
        :meth:`add_cli_options` round-trips exactly.
        """
        defaults = PipelineSpec()
        tokens: List[str] = []
        if self.extrapolation_window != defaults.extrapolation_window:
            tokens += ["--window", str(self.extrapolation_window)]
        if self.block_size != defaults.block_size:
            tokens += ["--block-size", str(self.block_size)]
        if self.search_range != defaults.search_range:
            tokens += ["--search-range", str(self.search_range)]
        if self.exhaustive_search:
            tokens += ["--exhaustive-search"]
        if self.search_policy != defaults.search_policy:
            tokens += ["--search-policy", self.search_policy]
        if self.kernel_backend != defaults.kernel_backend:
            tokens += ["--kernel-backend", self.kernel_backend]
        if self.frame_format != defaults.frame_format:
            tokens += ["--frame-format", self.frame_format]
        if self.sub_roi_grid != defaults.sub_roi_grid:
            tokens += ["--sub-roi-grid", "x".join(str(v) for v in self.sub_roi_grid)]
        if not self.expose_motion_vectors:
            tokens += ["--no-motion-vectors"]
        if self.soc_config != defaults.soc_config:
            tokens += ["--soc-config", self.soc_config]
        if self.extrapolation_host != defaults.extrapolation_host:
            tokens += ["--extrapolation-host", self.extrapolation_host]
        if self.workers != defaults.workers:
            tokens += ["--exec-workers", str(self.workers)]
        if self.transport != defaults.transport:
            tokens += ["--transport", self.transport]
        return tokens

    def cache_key(self) -> Tuple[object, ...]:
        """A stable hashable key identifying this configuration.

        The harness stores sweep results under this key.  Execution knobs
        (``workers``, ``transport``) are deliberately excluded: they select
        where sessions run, never what they compute (sharded output is
        bit-identical to serial, property-tested), so results are shared
        across execution modes.  Two specs that agree on every *algorithmic*
        knob therefore share a key even if their execution knobs differ.
        """
        return (
            str(self.extrapolation_window),
            self.block_size,
            self.search_range,
            self.exhaustive_search,
            self.search_policy,
            self.kernel_backend,
            self.frame_format,
            self.sub_roi_grid,
            self.expose_motion_vectors,
            self.soc_config,
            self.extrapolation_host,
        )

    def describe(self) -> str:
        """Short human-readable label (``EW-2/b16/r7/tss/pruned``)."""
        window = (
            "EW-A"
            if self.extrapolation_window == "adaptive"
            else f"EW-{self.extrapolation_window}"
        )
        search = "es" if self.exhaustive_search else "tss"
        label = f"{window}/b{self.block_size}/r{self.search_range}/{search}"
        if self.exhaustive_search:
            label += f"/{self.search_policy}"
        if self.kernel_backend != "numpy":
            label += f"/k:{self.kernel_backend}"
        if self.frame_format != PipelineSpec().frame_format:
            label += f"/{self.frame_format}"
        if self.sub_roi_grid != PipelineSpec().sub_roi_grid:
            label += f"/sr{self.sub_roi_grid[0]}x{self.sub_roi_grid[1]}"
        if not self.expose_motion_vectors:
            label += "/no-mv"
        if self.soc_config != "default":
            label += f"/soc:{self.soc_config}"
        if self.extrapolation_host != "mc":
            label += f"/ew@{self.extrapolation_host}"
        if self.workers != 1:
            label += f"/x{self.workers}"
        return label

    # ------------------------------------------------------------------
    # Construction of the configured objects
    # ------------------------------------------------------------------
    def block_matching_config(self) -> BlockMatchingConfig:
        strategy = (
            SearchStrategy.EXHAUSTIVE if self.exhaustive_search else SearchStrategy.THREE_STEP
        )
        return BlockMatchingConfig(
            block_size=self.block_size,
            search_range=self.search_range,
            strategy=strategy,
            search_policy=SearchPolicy(self.search_policy),
            kernel_backend=self.kernel_backend,
        )

    def euphrates_config(self) -> "EuphratesConfig":
        from .pipeline import EuphratesConfig

        return EuphratesConfig(
            block_matching=self.block_matching_config(),
            extrapolation=ExtrapolationConfig(sub_roi_grid=self.sub_roi_grid),
            expose_motion_vectors=self.expose_motion_vectors,
            frame_format=parse_frame_format(self.frame_format),
        )

    def window_controller(self) -> WindowController:
        """A fresh window controller implementing this spec's window mode."""
        if self.extrapolation_window == "adaptive":
            return AdaptiveWindowController()
        return ConstantWindowController(int(self.extrapolation_window))

    def build(self, backend: "InferenceBackend") -> "EuphratesPipeline":
        """Assemble a ready-to-run pipeline around ``backend``."""
        from .executor import ExecutionSpec
        from .pipeline import EuphratesPipeline

        pipeline = EuphratesPipeline(
            backend=backend,
            window_controller=self.window_controller(),
            config=self.euphrates_config(),
        )
        pipeline.execution = ExecutionSpec(
            workers=self.workers, transport=self.transport
        )
        return pipeline

    def with_window(self, window: Union[int, str]) -> "PipelineSpec":
        """This spec with a different extrapolation window (sweep helper)."""
        return replace(self, extrapolation_window=window)

    # ------------------------------------------------------------------
    # The modeled SoC this configuration prices energy on
    # ------------------------------------------------------------------
    @property
    def extrapolation_on_cpu(self) -> bool:
        """Whether energy pricing hosts E-frame extrapolation in software."""
        return self.extrapolation_host == "cpu"

    def soc_configuration(self) -> "SoCConfig":
        """The :class:`~repro.soc.config.SoCConfig` named by ``soc_config``."""
        from ..soc.config import resolve_soc_config

        return resolve_soc_config(self.soc_config)

    def vision_soc(self) -> "VisionSoC":
        """A :class:`~repro.soc.soc.VisionSoC` model for this spec's SoC."""
        from ..soc.soc import VisionSoC

        return VisionSoC(self.soc_configuration())
