"""Euphrates core: motion-extrapolated continuous vision.

This package implements the paper's primary contribution — the algorithm
that replaces most per-frame CNN inferences with motion-vector extrapolation
(Sec. 3) — plus the shared geometry and result types used throughout the
library.
"""

from .geometry import BoundingBox, MotionVector, Point, ZERO_MOTION, mean_iou
from .types import (
    DatasetRunResult,
    Detection,
    FrameKind,
    FrameResult,
    FrameTelemetry,
    SequenceResult,
)
from .extrapolation import (
    ExtrapolationConfig,
    ExtrapolationResult,
    MotionExtrapolator,
    RoiMotionState,
)
from .window import (
    AdaptiveWindowController,
    ConstantWindowController,
    WindowController,
)
from .backends import (
    CNNDetectionBackend,
    CNNTrackingBackend,
    InferenceBackend,
    NCCTrackingBackend,
    detection_backend_for,
    tracking_backend_for,
)
from .executor import (
    SCHEDULING_POLICIES,
    TRANSPORTS,
    ExecutionSpec,
    FrameRecord,
    FrameRef,
    ShardedExecutor,
    ShardError,
    ShardSchedule,
    StreamFailedError,
    StreamShard,
)
from .ingest import (
    AdmissionError,
    IngestConfig,
    IngestCore,
    ProtocolError,
    ReorderWindow,
    StreamFaults,
)
from .pipeline import EuphratesConfig, EuphratesPipeline
from .server import EuphratesServer, ServeClient, ServerThread
from .session import EuphratesSession, SessionClosedError, SessionStats, StreamOracle
from .spec import PipelineSpec
from .streaming import (
    MultiplexerReport,
    StreamMultiplexer,
    StreamStats,
)

__all__ = [
    "BoundingBox",
    "MotionVector",
    "Point",
    "ZERO_MOTION",
    "mean_iou",
    "DatasetRunResult",
    "Detection",
    "FrameKind",
    "FrameResult",
    "FrameTelemetry",
    "SequenceResult",
    "ExtrapolationConfig",
    "ExtrapolationResult",
    "MotionExtrapolator",
    "RoiMotionState",
    "WindowController",
    "ConstantWindowController",
    "AdaptiveWindowController",
    "InferenceBackend",
    "CNNDetectionBackend",
    "CNNTrackingBackend",
    "NCCTrackingBackend",
    "detection_backend_for",
    "tracking_backend_for",
    "EuphratesConfig",
    "EuphratesPipeline",
    "EuphratesSession",
    "SessionClosedError",
    "SessionStats",
    "StreamOracle",
    "PipelineSpec",
    "StreamMultiplexer",
    "StreamStats",
    "MultiplexerReport",
    "SCHEDULING_POLICIES",
    "TRANSPORTS",
    "ExecutionSpec",
    "FrameRecord",
    "FrameRef",
    "ShardedExecutor",
    "ShardError",
    "ShardSchedule",
    "StreamFailedError",
    "StreamShard",
    "AdmissionError",
    "IngestConfig",
    "IngestCore",
    "ProtocolError",
    "ReorderWindow",
    "StreamFaults",
    "EuphratesServer",
    "ServeClient",
    "ServerThread",
]
