"""Camera sensor model.

Models an AR1335-class mobile image sensor (Sec. 5.1): it converts a scene
luma image into a Bayer-mosaiced RAW capture with shot/read noise and a fixed
population of dead pixels, and carries the datasheet power figure used by the
SoC energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class SensorConfig:
    """Static configuration of the modeled image sensor."""

    name: str = "AR1335"
    #: Capture resolution; the paper's nominal setting is 1920x1080 at 60 FPS.
    width: int = 1920
    height: int = 1080
    frame_rate: float = 60.0
    #: Datasheet active power at 1080p60, in watts (Sec. 5.1).
    active_power_w: float = 0.180
    #: Standard deviation of read noise in digital numbers.
    read_noise: float = 1.5
    #: Scale of photon shot noise (proportional to sqrt(signal)).
    shot_noise_scale: float = 0.08
    #: Fraction of pixels that are permanently dead (stuck at zero).
    dead_pixel_fraction: float = 2e-4

    @property
    def pixels_per_frame(self) -> int:
        return self.width * self.height

    @property
    def frame_period_s(self) -> float:
        return 1.0 / self.frame_rate

    def energy_per_frame_j(self) -> float:
        """Sensor energy per captured frame in joules."""
        return self.active_power_w * self.frame_period_s


@dataclass
class RawFrame:
    """A Bayer-mosaiced RAW capture plus its capture metadata."""

    bayer: np.ndarray
    frame_index: int
    #: RGGB channel identity per pixel, encoded as 0=R, 1=G, 2=B.
    channel_map: np.ndarray
    exposure_gain: float = 1.0

    @property
    def height(self) -> int:
        return int(self.bayer.shape[0])

    @property
    def width(self) -> int:
        return int(self.bayer.shape[1])


def bayer_channel_map(height: int, width: int) -> np.ndarray:
    """RGGB channel layout: 0=R, 1=G, 2=B, repeated in 2x2 tiles."""
    channel = np.empty((height, width), dtype=np.uint8)
    channel[0::2, 0::2] = 0  # R
    channel[0::2, 1::2] = 1  # G
    channel[1::2, 0::2] = 1  # G
    channel[1::2, 1::2] = 2  # B
    return channel


class CameraSensor:
    """Converts scene luma into noisy Bayer RAW captures.

    The synthetic video substrate produces luma frames; a real sensor sees a
    colour scene.  We synthesise plausible colour by applying fixed per-channel
    gains to the luma before mosaicing, which is enough for the downstream
    demosaic / white-balance stages to have real work to do.
    """

    #: Per-channel gains used to synthesise colour from scene luma.
    _CHANNEL_GAINS = (0.92, 1.0, 0.82)

    def __init__(self, config: SensorConfig | None = None, seed: int = 0) -> None:
        self.config = config or SensorConfig()
        self._rng = np.random.default_rng(seed)
        self._dead_pixels: Tuple[np.ndarray, np.ndarray] | None = None
        #: Number of frames captured so far.
        self.frames_captured = 0

    def capture(self, scene_luma: np.ndarray, frame_index: int) -> RawFrame:
        """Capture one RAW frame of the given scene.

        ``scene_luma`` may have any resolution; the sensor's nominal
        resolution only matters for power/traffic accounting, so the capture
        is performed at the scene's native size.
        """
        scene = np.asarray(scene_luma, dtype=np.float64)
        if scene.ndim != 2:
            raise ValueError("scene_luma must be a 2-D luma image")
        height, width = scene.shape
        channel_map = bayer_channel_map(height, width)

        gains = np.asarray(self._CHANNEL_GAINS)[channel_map]
        signal = scene * gains

        shot_noise = self._rng.normal(
            0.0, self.config.shot_noise_scale * np.sqrt(np.maximum(signal, 0.0))
        )
        read_noise = self._rng.normal(0.0, self.config.read_noise, size=signal.shape)
        noisy = signal + shot_noise + read_noise

        noisy = self._apply_dead_pixels(noisy)
        bayer = np.clip(noisy, 0.0, 255.0)

        self.frames_captured += 1
        return RawFrame(bayer=bayer, frame_index=frame_index, channel_map=channel_map)

    def _apply_dead_pixels(self, image: np.ndarray) -> np.ndarray:
        """Zero out a fixed, per-sensor population of dead pixels."""
        if self.config.dead_pixel_fraction <= 0:
            return image
        if self._dead_pixels is None or self._dead_pixels[0].shape[0] == 0:
            total = image.size
            count = max(1, int(total * self.config.dead_pixel_fraction))
            flat = self._rng.choice(total, size=count, replace=False)
            self._dead_pixels = np.unravel_index(flat, image.shape)
        rows, cols = self._dead_pixels
        # Dead-pixel positions are defined for the first-seen resolution;
        # guard against scenes of a different size.
        valid = (rows < image.shape[0]) & (cols < image.shape[1])
        image[rows[valid], cols[valid]] = 0.0
        return image

    @property
    def dead_pixel_coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Row/column indices of the sensor's dead pixels (for the ISP)."""
        if self._dead_pixels is None:
            return (np.empty(0, dtype=int), np.empty(0, dtype=int))
        return self._dead_pixels
