"""Vision-frontend substrate: camera sensor model and ISP pipeline.

The continuous-vision frontend (Fig. 2 in the paper) captures RAW Bayer data
on an image sensor and converts it to RGB/YUV frames through an ISP pipeline
of dead-pixel correction, demosaicing, white balance and, increasingly,
motion-enabled stages such as temporal denoising.  Euphrates' frontend
augmentation (Sec. 4.2) is to keep the motion vectors the temporal-denoise
stage already computes and write them into the frame-buffer metadata instead
of discarding them.
"""

from .sensor import CameraSensor, RawFrame, SensorConfig
from .stages import (
    DeadPixelCorrection,
    Demosaic,
    GammaCorrection,
    ISPStage,
    WhiteBalance,
    rgb_to_luma,
)
from .denoise import TemporalDenoiseStage
from .framebuffer import (
    DEFAULT_FRAME_FORMAT,
    FixedPointFormat,
    FrameBuffer,
    FrameBufferEntry,
)
from .pipeline import ISPConfig, ISPPipeline, ProcessedFrame

__all__ = [
    "DEFAULT_FRAME_FORMAT",
    "FixedPointFormat",
    "CameraSensor",
    "RawFrame",
    "SensorConfig",
    "ISPStage",
    "DeadPixelCorrection",
    "Demosaic",
    "WhiteBalance",
    "GammaCorrection",
    "rgb_to_luma",
    "TemporalDenoiseStage",
    "FrameBuffer",
    "FrameBufferEntry",
    "ISPConfig",
    "ISPPipeline",
    "ProcessedFrame",
]
