"""Classic ISP pipeline stages (Bayer-domain and RGB-domain).

Each stage is a small, stateless (or nearly stateless) transform modelled
after the blocks shown in the paper's Fig. 2: dead-pixel correction and
demosaicing in the Bayer domain, then colour balance and gamma in the RGB
domain.  Stages report an approximate arithmetic-operation count per pixel so
the SoC model can account for ISP compute.

Every stage optionally quantizes its output to a
:class:`~repro.isp.framebuffer.FixedPointFormat` — the fixed-point datapath
of a real ISP.  With a format configured (the pipeline default), the frames
each stage emits lie on a power-of-two lattice, so downstream block matching
always rides the exact integer SAD kernel instead of the float64 gather
path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from . import kernels
from .framebuffer import FixedPointFormat


class ISPStage(ABC):
    """Base class for a single stage of the ISP pipeline."""

    #: Approximate arithmetic operations per output pixel, used for the
    #: compute-overhead accounting in Sec. 5.1.
    ops_per_pixel: float = 1.0

    #: Fixed-point format the stage's output is quantized to; ``None``
    #: keeps the unquantized float output (the legacy behaviour).
    output_format: Optional[FixedPointFormat] = None

    @property
    def name(self) -> str:
        return type(self).__name__

    @abstractmethod
    def process(self, image: np.ndarray, **context) -> np.ndarray:
        """Transform the image, returning a new array."""

    def _finalize(self, image: np.ndarray) -> np.ndarray:
        """Snap the stage output onto the configured fixed-point lattice."""
        if self.output_format is None:
            return image
        return self.output_format.quantize(image)


class DeadPixelCorrection(ISPStage):
    """Replaces dead (stuck-at-zero) Bayer pixels with a neighbourhood mean.

    Dead pixels are detected as pixels that are dramatically darker than the
    average of their same-channel neighbours two pixels away (the nearest
    neighbours of the same Bayer colour).
    """

    ops_per_pixel = 6.0

    def __init__(
        self,
        detection_threshold: float = 40.0,
        output_format: Optional[FixedPointFormat] = None,
    ) -> None:
        self.detection_threshold = detection_threshold
        self.output_format = output_format

    def process(self, image: np.ndarray, **context) -> np.ndarray:
        corrected = image.astype(np.float64).copy()
        neighbour_mean = _same_channel_neighbour_mean(corrected)
        dead = (neighbour_mean - corrected) > self.detection_threshold
        corrected[dead] = neighbour_mean[dead]
        return self._finalize(corrected)


class Demosaic(ISPStage):
    """Bilinear demosaicing from an RGGB Bayer mosaic to full RGB.

    ``kernel_backend`` selects the interpolation kernel (``"numpy"``
    vectorized masks + summed-area tables, or the compiled ``"numba"``
    variant); all backends are bit-identical, and ``ops_per_pixel`` models
    the arithmetic of the interpolation itself, so the energy accounting is
    backend-independent.
    """

    ops_per_pixel = 12.0

    def __init__(
        self,
        output_format: Optional[FixedPointFormat] = None,
        kernel_backend: str = "numpy",
    ) -> None:
        self.output_format = output_format
        self.kernel_backend = kernel_backend

    def process(self, image: np.ndarray, **context) -> np.ndarray:
        channel_map = context.get("channel_map")
        if channel_map is None:
            raise ValueError("Demosaic requires the sensor channel_map in context")
        return self._finalize(
            kernels.bilinear_demosaic(
                image.astype(np.float64), channel_map, backend=self.kernel_backend
            )
        )


class WhiteBalance(ISPStage):
    """Grey-world white balance applied to an RGB image."""

    ops_per_pixel = 3.0

    def __init__(self, output_format: Optional[FixedPointFormat] = None) -> None:
        self.output_format = output_format

    def process(self, image: np.ndarray, **context) -> np.ndarray:
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError("WhiteBalance expects an RGB image")
        balanced = image.astype(np.float64).copy()
        means = balanced.reshape(-1, 3).mean(axis=0)
        overall = means.mean()
        gains = np.where(means > 1e-6, overall / np.maximum(means, 1e-6), 1.0)
        balanced *= gains[None, None, :]
        return self._finalize(np.clip(balanced, 0.0, 255.0))


class GammaCorrection(ISPStage):
    """Gamma curve applied per channel; gamma=1.0 is a no-op."""

    ops_per_pixel = 2.0

    def __init__(
        self, gamma: float = 1.0, output_format: Optional[FixedPointFormat] = None
    ) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = gamma
        self.output_format = output_format

    def process(self, image: np.ndarray, **context) -> np.ndarray:
        if self.gamma == 1.0:
            return self._finalize(image.astype(np.float64))
        normalised = np.clip(image.astype(np.float64) / 255.0, 0.0, 1.0)
        return self._finalize(255.0 * np.power(normalised, self.gamma))


def rgb_to_luma(
    rgb: np.ndarray, output_format: Optional[FixedPointFormat] = None
) -> np.ndarray:
    """BT.601 luma from an RGB image (the representation the backend uses).

    With ``output_format`` the luma plane is quantized onto the fixed-point
    lattice, keeping it on the exact integer block-matching path.
    """
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("rgb_to_luma expects an (H, W, 3) image")
    weights = np.array([0.299, 0.587, 0.114])
    luma = np.clip(rgb @ weights, 0.0, 255.0)
    if output_format is None:
        return luma
    return output_format.quantize(luma)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _same_channel_neighbour_mean(bayer: np.ndarray) -> np.ndarray:
    """Mean of the four same-colour neighbours (two pixels away) of each pixel."""
    padded = np.pad(bayer, 2, mode="reflect")
    height, width = bayer.shape
    up = padded[0:height, 2 : 2 + width]
    down = padded[4 : 4 + height, 2 : 2 + width]
    left = padded[2 : 2 + height, 0:width]
    right = padded[2 : 2 + height, 4 : 4 + width]
    return (up + down + left + right) / 4.0


def _bilinear_demosaic(bayer: np.ndarray, channel_map: np.ndarray) -> np.ndarray:
    """Bilinear interpolation demosaic (numpy kernel; kept for compatibility)."""
    return kernels.bilinear_demosaic(bayer, channel_map)


def _box_sum_3x3(image: np.ndarray) -> np.ndarray:
    """Sum over each pixel's 3x3 neighbourhood (reflect padding).

    Delegates to :func:`repro.isp.kernels.box_sum_3x3`: an exact int64
    summed-area table on lattice inputs, the nine-shift accumulation on
    genuinely fractional floats.
    """
    return kernels.box_sum_3x3(image)
