"""DRAM frame buffer shared between the vision frontend and backend.

The ISP writes each processed frame (pixel data plus metadata) into a frame
buffer in DRAM; the backend IPs read from it through the system MMU
(Sec. 4.2).  Euphrates piggybacks the existing frame-buffer mechanism to
carry the motion vectors: they are appended to the metadata section, adding
only ~8 KB to the ~6 MB a 1080p frame already occupies.

The module also defines the **fixed-point frame representation** the ISP
stages quantize to (:class:`FixedPointFormat`).  A real ISP datapath carries
pixels as narrow fixed-point words, not float64; modelling that explicitly
means every frame the pipeline produces lies on a power-of-two lattice, so
block matching always rides the exact integer SAD kernel
(:mod:`repro.motion.kernels`) instead of falling off onto the float64
gather path.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

import numpy as np

from ..motion.motion_field import MotionField


#: Bytes per pixel of the RGB/YUV frame the ISP commits to DRAM.  A 1080p
#: frame at 3 bytes/pixel is ~6 MB, matching the paper's figure.
PIXEL_BYTES_PER_PIXEL = 3


@dataclass(frozen=True)
class FixedPointFormat:
    """A ``Qm.f`` unsigned fixed-point pixel format.

    Values lie on the ``2**-frac_bits`` lattice within
    ``[0, 2**int_bits - 2**-frac_bits]``.  Frames are *carried* as float64
    (so existing numpy code is untouched) but every value is an exact
    multiple of the lattice step — which is precisely what the exact-integer
    SAD kernel detects and exploits.
    """

    int_bits: int = 8
    frac_bits: int = 4

    def __post_init__(self) -> None:
        if self.int_bits <= 0 or self.frac_bits < 0:
            raise ValueError("int_bits must be positive and frac_bits non-negative")

    @property
    def scale(self) -> int:
        """Lattice denominator: raw code = value * scale."""
        return 1 << self.frac_bits

    @property
    def total_bits(self) -> int:
        return self.int_bits + self.frac_bits

    @property
    def max_value(self) -> float:
        """Largest representable value (all code bits set)."""
        return ((1 << self.total_bits) - 1) / self.scale

    @property
    def storage_dtype(self) -> np.dtype:
        """Narrowest unsigned dtype that holds a raw code."""
        for candidate in (np.uint8, np.uint16, np.uint32):
            if self.total_bits <= 8 * np.dtype(candidate).itemsize:
                return np.dtype(candidate)
        return np.dtype(np.uint64)

    def quantize(
        self,
        values: np.ndarray,
        out: "np.ndarray | None" = None,
        *,
        assume_in_range: bool = False,
    ) -> np.ndarray:
        """Round to the nearest representable value (saturating, float64 out).

        ``out`` (a float64 buffer of the right shape, which may alias
        ``values``) makes the operation allocation-free for steady-state
        callers; the in-place sequence multiplies, rounds, clips and
        rescales in exactly the order of the allocating expression, so both
        paths are bit-identical.  ``assume_in_range`` skips the saturation
        pass; callers may only set it when every value provably lies in
        ``[0, max_value]`` (then the clip is an exact no-op, so the result
        is unchanged — this just avoids a full pass over the frame).
        """
        values = np.asarray(values, dtype=np.float64)
        if assume_in_range and self.total_bits <= 51:
            # Two passes instead of four: adding ``1.5 * 2**52 / scale``
            # pushes the sum into a binade whose ulp is exactly the lattice
            # step, so IEEE round-to-nearest-even performs the same rounding
            # ``rint(x * scale) / scale`` does (ties included), and the
            # subtraction restores the rounded value exactly.  Valid while
            # the value range stays below the constant's half-binade, which
            # ``assume_in_range`` plus ``total_bits <= 51`` guarantees.
            magic = float(3 << 51) / self.scale
            if out is None:
                return (values + magic) - magic
            np.add(values, magic, out=out)
            np.subtract(out, magic, out=out)
            return out
        top_code = float((1 << self.total_bits) - 1)
        if out is None:
            scaled = np.rint(values * self.scale)
            if not assume_in_range:
                scaled = np.clip(scaled, 0.0, top_code)
            return scaled / self.scale
        np.multiply(values, float(self.scale), out=out)
        np.rint(out, out=out)
        if not assume_in_range:
            np.clip(out, 0.0, top_code, out=out)
        np.divide(out, float(self.scale), out=out)
        return out

    def to_raw(self, values: np.ndarray) -> np.ndarray:
        """Quantize and pack into raw integer codes (the DRAM representation)."""
        scaled = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        clipped = np.clip(scaled, 0.0, (1 << self.total_bits) - 1)
        return clipped.astype(self.storage_dtype)

    def from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Expand raw codes back to lattice-aligned float64 values."""
        return np.asarray(raw, dtype=np.float64) / self.scale


#: The pipeline's default frame format: Q8.4 — the 8-bit range real ISPs
#: commit to DRAM plus 4 fractional bits of intermediate precision, the
#: same lattice the SAD kernel probes for.
DEFAULT_FRAME_FORMAT = FixedPointFormat(int_bits=8, frac_bits=4)

#: Spelling of the unquantized float64 datapath in ``--frame-format``.
FLOAT_FRAME_FORMAT = "float"

_FRAME_FORMAT_PATTERN = re.compile(r"^q(\d+)\.(\d+)$")


def parse_frame_format(value: "str | FixedPointFormat | None") -> "FixedPointFormat | None":
    """Resolve a ``--frame-format`` spelling to a :class:`FixedPointFormat`.

    ``"qM.F"`` (e.g. ``q8.4``) names an M-integer/F-fractional-bit lattice;
    ``"float"`` (or ``None``) selects the unquantized float64 datapath.  An
    already-built format passes through, so config layers accept either form.
    """
    if value is None or isinstance(value, FixedPointFormat):
        return value
    spelled = str(value).strip().lower()
    if spelled == FLOAT_FRAME_FORMAT:
        return None
    match = _FRAME_FORMAT_PATTERN.match(spelled)
    if match is None:
        raise ValueError(
            f"unknown frame format '{value}' (expected 'qM.F' like 'q8.4', "
            f"or '{FLOAT_FRAME_FORMAT}')"
        )
    return FixedPointFormat(int_bits=int(match.group(1)), frac_bits=int(match.group(2)))


def spell_frame_format(fmt: "FixedPointFormat | None") -> str:
    """Inverse of :func:`parse_frame_format` (``q8.4`` / ``float``)."""
    if fmt is None:
        return FLOAT_FRAME_FORMAT
    return f"q{fmt.int_bits}.{fmt.frac_bits}"


@dataclass
class FrameBufferEntry:
    """One frame's worth of data in the DRAM frame buffer."""

    frame_index: int
    #: Luma plane of the processed frame (what the vision backend consumes).
    pixels: np.ndarray
    #: Motion vectors + confidences produced by the ISP's TD stage; ``None``
    #: when the Euphrates MV-exposure augmentation is disabled or when the
    #: frame had no reference (first frame of a stream).
    motion_field: Optional[MotionField] = None
    #: Extra metadata bytes (exposure, AWB gains, histograms ...) that a real
    #: ISP writes regardless of Euphrates.
    baseline_metadata_bytes: int = 256
    #: Fixed-point format the pixel values lie on; ``None`` for legacy
    #: unquantized frames.  Purely descriptive — the byte accounting keeps
    #: the paper's 3 bytes/pixel figure either way.
    pixel_format: Optional[FixedPointFormat] = None

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def pixel_bytes(self) -> int:
        """Size of the pixel section in bytes."""
        return self.height * self.width * PIXEL_BYTES_PER_PIXEL

    @property
    def motion_metadata_bytes(self) -> int:
        """Size of the motion-vector metadata appended by Euphrates."""
        if self.motion_field is None:
            return 0
        return self.motion_field.metadata_bytes()

    @property
    def total_bytes(self) -> int:
        """Total DRAM footprint of this entry."""
        return self.pixel_bytes + self.baseline_metadata_bytes + self.motion_metadata_bytes

    @property
    def has_motion_vectors(self) -> bool:
        return self.motion_field is not None


class FrameBuffer:
    """A bounded ring of the most recent frame-buffer entries.

    Real SoCs allocate a small number of frame buffers and recycle them; the
    depth here bounds how many frames the backend may lag behind the
    frontend.  The buffer also tallies the DRAM write traffic the frontend
    generates, which feeds the SoC memory-energy model.
    """

    def __init__(self, depth: int = 4) -> None:
        if depth <= 0:
            raise ValueError("frame buffer depth must be positive")
        self.depth = depth
        self._entries: Deque[FrameBufferEntry] = deque(maxlen=depth)
        #: Total bytes written into the buffer since creation.
        self.bytes_written = 0
        #: Total bytes read out of the buffer since creation.
        self.bytes_read = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: FrameBufferEntry) -> None:
        """Commit a new frame from the frontend."""
        self._entries.append(entry)
        self.bytes_written += entry.total_bytes

    def latest(self) -> FrameBufferEntry:
        """The most recently committed frame."""
        if not self._entries:
            raise LookupError("frame buffer is empty")
        return self._entries[-1]

    def get(self, frame_index: int) -> FrameBufferEntry:
        """Entry for a specific frame index, if it is still resident."""
        for entry in self._entries:
            if entry.frame_index == frame_index:
                return entry
        raise LookupError(f"frame {frame_index} is no longer in the frame buffer")

    def read_pixels(self, frame_index: int) -> np.ndarray:
        """Backend read of a frame's pixel data (counts full pixel traffic)."""
        entry = self.get(frame_index)
        self.bytes_read += entry.pixel_bytes
        return entry.pixels

    def read_motion_metadata(self, frame_index: int) -> Optional[MotionField]:
        """Backend read of a frame's MV metadata (counts metadata traffic only)."""
        entry = self.get(frame_index)
        self.bytes_read += entry.motion_metadata_bytes
        return entry.motion_field

    def reset_traffic_counters(self) -> None:
        """Zero the read/write byte counters (e.g. between experiments)."""
        self.bytes_written = 0
        self.bytes_read = 0
