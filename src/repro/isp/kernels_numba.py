"""Compiled (Numba) ISP stage kernels: denoise blend, demosaic, box sum.

The ISP half of the optional ``numba`` kernel backend
(``PipelineSpec(kernel_backend="numba")``).  Where
:mod:`repro.motion.kernels_numba` compiles the SAD search, this module
compiles the remaining per-frame ISP hot loops:

* a **fused motion-compensated blend** — validity test (SAD threshold +
  bounds), gather and blend in one pass over the macroblock grid, covering
  full and ragged edge blocks alike, writing straight into the caller's
  scratch buffer with zero temporaries;
* the 3x3 **box sum** and mask-based **bilinear demosaic** used by the RAW
  path's Demosaic stage.

Bit-identity contract: the blend's per-pixel arithmetic is exactly the
reference expression ``(1-s)*current + s*reference`` (one multiply-add pair
per pixel, no reassociation), the source offset uses the same half-to-even
rounding as the reference's ``round()``, and the box sum/demosaic accumulate
the nine neighbours in the reference's ``dy``-major, ``dx``-minor order — so
all three are bit-identical to :mod:`repro.isp.reference` even on genuinely
fractional float frames, not just in the exact-integer domain.

When Numba is not installed the module still imports cleanly:
``NUMBA_AVAILABLE`` is ``False``, ``@njit`` degrades to a no-op decorator,
and every kernel remains callable as plain (slow) Python — how the
bit-identity property tests exercise this code without the ``[accel]``
extra.  Backend *selection* never routes here in that case:
:func:`repro.motion.kernels.resolve_kernel_backend` degrades ``"numba"`` to
``"numpy"``.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised via the subprocess fallback test
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the no-numba environment itself
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):
        """No-op stand-in: keeps the kernels importable and callable."""

        def decorate(func):
            return func

        return decorate


def _jit(func):
    """``@njit(cache=True)`` when Numba is present, identity otherwise."""
    return _njit(cache=True)(func)


@_jit
def _rint_half_even(value):
    """Round to nearest, ties to even — ``round()``/``np.rint`` semantics."""
    rounded = math.floor(value + 0.5)
    if value + 0.5 == rounded and rounded % 2 != 0:
        rounded -= 1
    return rounded


@_jit
def blend_frame(current, previous, vectors, sad, block, max_sad, strength, out):
    """Fused motion-compensated blend over the whole macroblock grid.

    ``out`` must already hold a copy of ``current`` (the caller's scratch
    buffer); blocks with a good-enough match are overwritten with the
    blended values, everything else is left as the pass-through copy.
    """
    height, width = current.shape
    grid_rows, grid_cols = sad.shape
    for row in range(grid_rows):
        y0 = row * block
        y1 = min(y0 + block, height)
        for col in range(grid_cols):
            if sad[row, col] > max_sad:
                continue
            x0 = col * block
            x1 = min(x0 + block, width)
            u = vectors[row, col, 0]
            v = vectors[row, col, 1]
            src_y0 = _rint_half_even(y0 - v)
            src_x0 = _rint_half_even(x0 - u)
            src_y1 = src_y0 + (y1 - y0)
            src_x1 = src_x0 + (x1 - x0)
            if src_y0 < 0 or src_x0 < 0 or src_y1 > height or src_x1 > width:
                continue
            for y in range(y0, y1):
                source_y = src_y0 + (y - y0)
                for x in range(x0, x1):
                    out[y, x] = (1.0 - strength) * current[y, x] + strength * previous[
                        source_y, src_x0 + (x - x0)
                    ]


@_jit
def _reflect(index, size):
    """np.pad ``mode="reflect"`` index mapping for a 1-wide border."""
    if index < 0:
        return -index
    if index >= size:
        return 2 * size - 2 - index
    return index


@_jit
def box_sum_3x3(image, out):
    """3x3 reflected-border box sum, neighbours added in dy-major order."""
    height, width = image.shape
    for y in range(height):
        for x in range(width):
            total = 0.0
            for dy in range(-1, 2):
                source_y = _reflect(y + dy, height)
                for dx in range(-1, 2):
                    total += image[source_y, _reflect(x + dx, width)]
            out[y, x] = total


@_jit
def bilinear_demosaic(bayer, channel_map, out):
    """Mask-based bilinear demosaic into ``out`` (height x width x 3).

    Per pixel and channel: the sensed value where the CFA has that channel,
    otherwise the 3x3 neighbour average computed exactly as the reference
    does it (masked sum and count accumulated in dy-major order, division
    guarded at 1e-9), all clipped to [0, 255].
    """
    height, width = bayer.shape
    for y in range(height):
        for x in range(width):
            for channel in range(3):
                if channel_map[y, x] == channel:
                    value = bayer[y, x]
                else:
                    summed = 0.0
                    count = 0.0
                    for dy in range(-1, 2):
                        source_y = _reflect(y + dy, height)
                        for dx in range(-1, 2):
                            source_x = _reflect(x + dx, width)
                            if channel_map[source_y, source_x] == channel:
                                summed += bayer[source_y, source_x]
                                count += 1.0
                    if count > 0:
                        guarded = count if count > 1e-9 else 1e-9
                        value = summed / guarded
                    else:
                        value = 0.0
                if value < 0.0:
                    value = 0.0
                elif value > 255.0:
                    value = 255.0
                out[y, x, channel] = value


__all__ = [
    "NUMBA_AVAILABLE",
    "bilinear_demosaic",
    "blend_frame",
    "box_sum_3x3",
]
