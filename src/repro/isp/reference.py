"""Scalar reference implementations of the ISP stage kernels.

The test oracle for :mod:`repro.isp.kernels`, mirroring the role
:mod:`repro.motion.reference` plays for the SAD kernels: every function here
walks pixels and macroblocks in plain Python loops, stating the stage
semantics in the most obvious possible form.  The vectorized numpy kernels
(the default backend) and the compiled numba kernels are property-tested
bit-identical to these — exactly, via ``np.array_equal``, not almost-equal —
so any divergence is a bug in the fast path, never a tolerance question.

Nothing here is called on the frame path; these functions exist for tests,
the pipeline bench's same-run speedup ratio, and documentation.
"""

from __future__ import annotations

import numpy as np

from ..motion.motion_field import MotionField


def reference_motion_compensated_blend(
    current: np.ndarray,
    previous: np.ndarray,
    field: MotionField,
    *,
    blend_strength: float,
    max_normalised_sad: float,
) -> np.ndarray:
    """Per-macroblock motion-compensated temporal blend, one block at a time.

    Each macroblock whose match is good enough (normalised SAD under the
    threshold, motion-compensated source fully inside the frame) is blended
    with its source patch in the previous denoised frame; everything else
    passes through.  Partial blocks at a ragged frame edge blend their
    actual extent.
    """
    block = field.grid.block_size
    height, width = current.shape
    blended = current.copy()
    strength = blend_strength
    max_sad = field.max_sad * max_normalised_sad

    for row in range(field.grid.rows):
        for col in range(field.grid.cols):
            if field.sad[row, col] > max_sad:
                continue
            y0 = row * block
            x0 = col * block
            y1 = min(y0 + block, height)
            x1 = min(x0 + block, width)
            u, v = field.vectors[row, col]
            src_y0 = int(round(y0 - v))
            src_x0 = int(round(x0 - u))
            src_y1 = src_y0 + (y1 - y0)
            src_x1 = src_x0 + (x1 - x0)
            if src_y0 < 0 or src_x0 < 0 or src_y1 > height or src_x1 > width:
                continue
            reference = previous[src_y0:src_y1, src_x0:src_x1]
            blended[y0:y1, x0:x1] = (
                (1.0 - strength) * current[y0:y1, x0:x1] + strength * reference
            )
    return blended


def reference_box_sum_3x3(image: np.ndarray) -> np.ndarray:
    """3x3 box sum with reflected borders via nine shifted adds.

    The accumulation order (``dy`` major, ``dx`` minor) is part of the
    contract: for genuinely fractional float inputs the fast paths must add
    neighbours in this order to stay bit-identical.
    """
    padded = np.pad(image, 1, mode="reflect")
    height, width = image.shape
    total = np.zeros_like(image, dtype=np.float64)
    for dy in range(3):
        for dx in range(3):
            total += padded[dy : dy + height, dx : dx + width]
    return total


def reference_bilinear_demosaic(
    bayer: np.ndarray, channel_map: np.ndarray
) -> np.ndarray:
    """Mask-based bilinear demosaic: per-channel 3x3 neighbour averaging.

    At every pixel, each colour channel is either the sensed value (where
    the CFA has that channel) or the mean of the 3x3 neighbours that do.
    """
    height, width = bayer.shape
    rgb = np.zeros((height, width, 3), dtype=np.float64)
    for channel in range(3):
        mask = (channel_map == channel).astype(np.float64)
        values = bayer * mask
        summed = reference_box_sum_3x3(values)
        counts = reference_box_sum_3x3(mask)
        with np.errstate(invalid="ignore", divide="ignore"):
            interpolated = np.where(
                counts > 0, summed / np.maximum(counts, 1e-9), 0.0
            )
        rgb[..., channel] = np.where(mask > 0, bayer, interpolated)
    return np.clip(rgb, 0.0, 255.0)


def reference_roi_statistics(field: MotionField, rois) -> list:
    """Per-ROI mean motion and confidence, one ROI at a time.

    The oracle for :meth:`MotionField.roi_statistics_batch`: the batch path
    must return exactly what querying each ROI individually returns.
    """
    return [field.roi_statistics(roi) for roi in rois]


__all__ = [
    "reference_bilinear_demosaic",
    "reference_box_sum_3x3",
    "reference_motion_compensated_blend",
    "reference_roi_statistics",
]
