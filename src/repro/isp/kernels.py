"""Vectorized ISP stage kernels behind the ``kernel_backend`` dispatch.

The ISP counterpart of :mod:`repro.motion.kernels`: the motion-compensated
denoise blend, the 3x3 box sum and the bilinear demosaic, each available as

* a vectorized **numpy** implementation (the default backend and the oracle
  for the compiled path), bit-identical to the scalar references in
  :mod:`repro.isp.reference`;
* a compiled **numba** implementation (:mod:`repro.isp.kernels_numba`),
  selected by ``backend="numba"`` — callers resolve availability through
  :func:`repro.motion.kernels.resolve_kernel_backend` first, exactly like
  the SAD kernels, so a missing ``[accel]`` extra degrades to numpy.

Bit-identity notes:

* The blend is element-wise arithmetic (``(1-s)*current + s*reference``), so
  vectorization cannot reassociate anything; the only care needed is using
  the same half-to-even rounding for source offsets as the reference.
* The box sum is a *reduction*, so the numpy path only uses the
  summed-area-table shortcut when the input provably lies on an integer or
  fixed-point lattice (:func:`fixed_point_scale`) where every sum is exact;
  genuinely fractional floats keep the reference's nine-shift accumulation
  order.  All kernels accept an ``out`` scratch buffer so steady-state
  callers allocate nothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..motion.kernels import KernelScratch, fixed_point_scale
from ..motion.motion_field import MotionField
from . import kernels_numba as _numba


def motion_compensated_blend(
    current: np.ndarray,
    previous: np.ndarray,
    field: MotionField,
    *,
    blend_strength: float,
    max_normalised_sad: float,
    out: Optional[np.ndarray] = None,
    backend: str = "numpy",
    scratch: Optional[KernelScratch] = None,
) -> np.ndarray:
    """Blend each macroblock with its motion-compensated predecessor.

    Writes into ``out`` (a float64 frame-shaped scratch buffer, allocated
    when absent) and returns it.  ``out`` must not alias ``current`` or
    ``previous``.  ``current`` may be uint8: every read of it lands in a
    float64 destination (assignments widen, and a uint8-by-float multiply
    promotes to float64), and uint8 -> float64 conversion is exact, so the
    result is bit-identical to widening the frame up front — the steady-state
    denoise stage exploits this to skip a full-frame copy per frame.
    ``scratch`` pools the numpy path's gather staging across frames (the
    steady-state caller passes the stage's pool; ad-hoc calls allocate a
    private one).
    """
    height, width = current.shape
    if out is None:
        out = np.empty((height, width), dtype=np.float64)
    block = field.grid.block_size
    strength = blend_strength
    max_sad = field.max_sad * max_normalised_sad

    if backend == "numba":
        np.copyto(out, current)
        _numba.blend_frame(
            current, previous, field.vectors, field.sad, block, max_sad, strength, out
        )
        return out

    copied = False
    rows_full = height // block
    cols_full = width // block
    if rows_full and cols_full:
        pool = scratch if scratch is not None else KernelScratch()
        vectors = field.vectors[:rows_full, :cols_full]
        # The block content came from (x - u, y - v) in the previous frame
        # (forward-motion convention).
        src_y = (
            np.arange(rows_full)[:, None] * block - np.rint(vectors[..., 1])
        ).astype(np.int64)
        src_x = (
            np.arange(cols_full)[None, :] * block - np.rint(vectors[..., 0])
        ).astype(np.int64)
        valid = (
            (field.sad[:rows_full, :cols_full] <= max_sad)
            & (src_y >= 0)
            & (src_x >= 0)
            & (src_y + block <= height)
            & (src_x + block <= width)
        )
        rows_idx, cols_idx = np.nonzero(valid)
        if rows_idx.size:
            # Displacement of each valid block in pixels (the same rounded
            # offsets the gathers use).  Real motion fields are coherent —
            # typically one displacement (usually (0, 0)) covers nearly every
            # block — so the dominant group is blended with one whole-frame
            # element-wise pass over *views* of both frames, and only the
            # leftover blocks pay the per-block gather.  Element-wise blends
            # and exact value moves keep the result bit-identical to the
            # all-gather path and the scalar reference.
            disp_y = src_y[rows_idx, cols_idx] - rows_idx * block
            disp_x = src_x[rows_idx, cols_idx] - cols_idx * block
            disp_keys = (disp_y + height) * (2 * width + 1) + (disp_x + width)
            unique_keys, first_index, key_counts = np.unique(
                disp_keys, return_index=True, return_counts=True
            )
            dominant = int(np.argmax(key_counts))
            total_blocks = rows_full * cols_full
            use_dominant = key_counts[dominant] * 2 >= total_blocks
            if not use_dominant and rows_idx.size * 3 >= total_blocks:
                # No single displacement dominates, but valid blocks tile
                # most of the grid: gather only the *source* side and write
                # straight through a blocked view of ``out`` — no destination
                # indices, no scatter, no current-frame gather.  The dense
                # pass overwrites the whole full-block grid, so only the
                # ragged edge strips need the ``current`` pre-fill.
                grid_y = rows_full * block
                grid_x = cols_full * block
                out[grid_y:, :] = current[grid_y:, :]
                out[:grid_y, grid_x:] = current[:grid_y, grid_x:]
                copied = True
                _blend_dense(
                    out, current, previous, src_y, src_x, valid,
                    rows_full, cols_full, block, strength,
                )
                rows_idx = rows_idx[:0]
                cols_idx = cols_idx[:0]
            if not copied:
                np.copyto(out, current)
                copied = True
            if use_dominant:
                member = disp_keys == unique_keys[dominant]
                dy = int(disp_y[first_index[dominant]])
                dx = int(disp_x[first_index[dominant]])
                # The in-bounds destination rectangle for this displacement;
                # every member block lies inside it by the validity check, so
                # one element-wise pass over frame views blends them all.
                # ``out`` never aliases ``current``/``previous`` (documented
                # contract), so the blend lands directly in ``out``.
                y_lo, y_hi = max(0, -dy), height - max(0, dy)
                x_lo, x_hi = max(0, -dx), width - max(0, dx)
                dst_view = out[y_lo:y_hi, x_lo:x_hi]
                cur_view = current[y_lo:y_hi, x_lo:x_hi]
                ref_view = previous[y_lo + dy : y_hi + dy, x_lo + dx : x_hi + dx]
                ref_term = pool.get("blend_full", (height, width), np.float64)[
                    y_lo:y_hi, x_lo:x_hi
                ]
                np.multiply(cur_view, 1.0 - strength, out=dst_view)
                np.multiply(ref_view, strength, out=ref_term)
                dst_view += ref_term
                # The rectangle also swept over non-member pixels — blocks of
                # other displacement groups, invalid blocks and the ragged
                # edge strips.  Restore those to ``current`` (cheap: the
                # dominant group covers at least half the grid), then blend
                # the leftover valid groups through the gather path.
                member_grid = pool.get(
                    "blend_member", (rows_full, cols_full), np.bool_
                )
                member_grid[:] = False
                member_grid[rows_idx[member], cols_idx[member]] = True
                restore_r, restore_c = np.nonzero(~member_grid)
                _restore_blocks(out, current, restore_r, restore_c, block)
                _restore_edges(
                    out, current, rows_full * block, cols_full * block,
                    y_lo, y_hi, x_lo, x_hi,
                )
                rows_idx = rows_idx[~member]
                cols_idx = cols_idx[~member]
            if rows_idx.size:
                _blend_gathered(
                    out,
                    current,
                    previous,
                    src_y,
                    src_x,
                    rows_idx,
                    cols_idx,
                    rows_full,
                    cols_full,
                    block,
                    width,
                    strength,
                    pool,
                )

    if not copied:
        np.copyto(out, current)

    # Ragged frame edge: the partial blocks of the bottom row / right column
    # keep the scalar path (at most rows+cols blocks, not the full grid).
    grid_rows, grid_cols = field.grid.rows, field.grid.cols
    if grid_rows > rows_full or grid_cols > cols_full:
        edge_blocks = [
            (row, col)
            for row in range(rows_full, grid_rows)
            for col in range(grid_cols)
        ]
        edge_blocks += [
            (row, col)
            for row in range(rows_full)
            for col in range(cols_full, grid_cols)
        ]
        for row, col in edge_blocks:
            if field.sad[row, col] > max_sad:
                continue
            y0 = row * block
            x0 = col * block
            y1 = min(y0 + block, height)
            x1 = min(x0 + block, width)
            u, v = field.vectors[row, col]
            src_y0 = int(round(y0 - v))
            src_x0 = int(round(x0 - u))
            src_y1 = src_y0 + (y1 - y0)
            src_x1 = src_x0 + (x1 - x0)
            if src_y0 < 0 or src_x0 < 0 or src_y1 > height or src_x1 > width:
                continue
            reference = previous[src_y0:src_y1, src_x0:src_x1]
            out[y0:y1, x0:x1] = (
                (1.0 - strength) * current[y0:y1, x0:x1] + strength * reference
            )
    return out


def _blocked_view(array: np.ndarray, block: int) -> np.ndarray:
    """A zero-copy ``(rows, block, cols, block)`` macroblock view of a 2-D
    array whose dimensions are multiples of ``block`` (works for any strides,
    unlike ``reshape``, which would silently copy a non-contiguous slice)."""
    height, width = array.shape
    stride_y, stride_x = array.strides
    return np.lib.stride_tricks.as_strided(
        array,
        shape=(height // block, block, width // block, block),
        strides=(stride_y * block, stride_y, stride_x * block, stride_x),
    )


def _blend_dense(
    out: np.ndarray,
    current: np.ndarray,
    previous: np.ndarray,
    src_y: np.ndarray,
    src_x: np.ndarray,
    valid: np.ndarray,
    rows_full: int,
    cols_full: int,
    block: int,
    strength: float,
) -> None:
    """Blend a near-dense valid grid without destination indexing.

    Gathers each block's motion-compensated reference patch in one fancy
    read through a sliding-window view of ``previous`` (no flat-index build,
    so the gather reads patch data instead of patch data *plus* an
    equal-sized int64 index array), then runs the blend element-wise through
    blocked 4-D views of ``current``/``out`` — the destination side is the
    grid itself, so there is no destination index and no scatter.  The
    gathered patch array is the dense path's one per-frame temporary;
    measured against the pooled flat-index gather it roughly halves the
    reference-side cost, which is why this path trades it for the pool.
    Invalid blocks get swept by the element-wise pass and are restored to
    ``current`` afterwards (cheap: the grid is near-dense).  Per-element
    arithmetic keeps the reference's ``(1-s)*current + s*reference`` operand
    order, so results stay bit-identical.
    """
    grid_y = rows_full * block
    grid_x = cols_full * block
    # Clamp invalid blocks' source to a safe in-bounds position; their
    # blended garbage is overwritten by the restore pass below.
    sy = np.where(valid, src_y, 0)
    sx = np.where(valid, src_x, 0)
    windows = np.lib.stride_tricks.sliding_window_view(previous, (block, block))
    ref_patches = windows[sy, sx]  # (rows_full, cols_full, block, block)
    # Scale the reference term in its contiguous gather layout, then add it
    # through the transposed block view — one strided pass instead of a
    # strided multiply into a third buffer plus a contiguous add.
    np.multiply(ref_patches, strength, out=ref_patches)
    ref_blocks = ref_patches.transpose(0, 2, 1, 3)
    out_blocks = _blocked_view(out[:grid_y, :grid_x], block)
    cur_blocks = _blocked_view(current[:grid_y, :grid_x], block)
    np.multiply(cur_blocks, 1.0 - strength, out=out_blocks)
    np.add(out_blocks, ref_blocks, out=out_blocks)
    invalid_r, invalid_c = np.nonzero(~valid)
    _restore_blocks(out, current, invalid_r, invalid_c, block)


def _restore_blocks(
    out: np.ndarray,
    current: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    block: int,
) -> None:
    """Copy ``current`` back over ``out`` for the listed full blocks."""
    for row, col in zip(rows.tolist(), cols.tolist()):
        y0 = row * block
        x0 = col * block
        out[y0 : y0 + block, x0 : x0 + block] = current[
            y0 : y0 + block, x0 : x0 + block
        ]


def _restore_edges(
    out: np.ndarray,
    current: np.ndarray,
    grid_y: int,
    grid_x: int,
    y_lo: int,
    y_hi: int,
    x_lo: int,
    x_hi: int,
) -> None:
    """Copy ``current`` back over the ragged edge strips the whole-rectangle
    blend swept through (rows below ``grid_y`` / columns right of ``grid_x``,
    clipped to the blended rectangle)."""
    if y_hi > grid_y:
        lo = max(y_lo, grid_y)
        out[lo:y_hi, x_lo:x_hi] = current[lo:y_hi, x_lo:x_hi]
    if x_hi > grid_x:
        lo = max(x_lo, grid_x)
        top = min(y_hi, grid_y)
        out[y_lo:top, lo:x_hi] = current[y_lo:top, lo:x_hi]


def _blend_gathered(
    out: np.ndarray,
    current: np.ndarray,
    previous: np.ndarray,
    src_y: np.ndarray,
    src_x: np.ndarray,
    rows_idx: np.ndarray,
    cols_idx: np.ndarray,
    rows_full: int,
    cols_full: int,
    block: int,
    width: int,
    strength: float,
    pool: KernelScratch,
) -> None:
    """Blend an arbitrary subset of full blocks via pooled flat-index gathers.

    Flat-index gathers through pooled staging buffers instead of fancy
    indexing a sliding-window view: ``np.take(..., out=)`` and the in-place
    blend arithmetic leave the steady state with zero per-frame allocations,
    and moving exact values through a different indexing scheme cannot
    change them.  The blend keeps the reference's ``(1-s)*current +
    s*reference`` operand order, so the float rounding matches bit for bit.
    """
    count = rows_idx.size
    patch = block * block
    capacity = rows_full * cols_full
    offsets = (
        np.arange(block)[:, None] * width + np.arange(block)[None, :]
    ).ravel()
    src_base = src_y[rows_idx, cols_idx] * width + src_x[rows_idx, cols_idx]
    dst_base = (rows_idx * block) * width + cols_idx * block
    src_flat = pool.get("blend_src_idx", (capacity, patch), np.int64)[:count]
    dst_flat = pool.get("blend_dst_idx", (capacity, patch), np.int64)[:count]
    np.add(src_base[:, None], offsets[None, :], out=src_flat)
    np.add(dst_base[:, None], offsets[None, :], out=dst_flat)
    ref_buf = pool.get("blend_ref", (capacity, patch), np.float64)[:count]
    cur_buf = pool.get("blend_cur", (capacity, patch), np.float64)[:count]
    np.take(previous.ravel(), src_flat, out=ref_buf)
    if current.dtype == np.float64:
        np.take(current.ravel(), dst_flat, out=cur_buf)
        np.multiply(cur_buf, 1.0 - strength, out=cur_buf)
    else:
        # ``np.take`` needs a dtype-matched out buffer; stage the raw gather
        # and widen through the multiply (uint8 -> float64 is exact).
        raw_buf = pool.get(
            "blend_cur_raw", (capacity, patch), current.dtype
        )[:count]
        np.take(current.ravel(), dst_flat, out=raw_buf)
        np.multiply(raw_buf, 1.0 - strength, out=cur_buf)
    np.multiply(ref_buf, strength, out=ref_buf)
    np.add(cur_buf, ref_buf, out=ref_buf)
    if out.flags.c_contiguous:
        out.reshape(-1)[dst_flat] = ref_buf
    else:
        # reshape(-1) of a non-contiguous array would scatter into a copy;
        # the blocked transpose view works for any layout.
        blocked = out[: rows_full * block, : cols_full * block].reshape(
            rows_full, block, cols_full, block
        ).transpose(0, 2, 1, 3)
        blocked[rows_idx, cols_idx] = ref_buf.reshape(count, block, block)


def box_sum_3x3(
    image: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    backend: str = "numpy",
) -> np.ndarray:
    """3x3 box sum with reflected borders.

    Lattice-valued inputs (integers, Q8.4 frames, CFA masks) take an exact
    int64 summed-area table — the nine-neighbour sum of bounded lattice
    values is exact in both orders, so the SAT result equals the reference's
    shifted adds bit for bit.  Genuinely fractional floats keep the
    reference's accumulation order.
    """
    height, width = image.shape
    if out is None:
        out = np.empty((height, width), dtype=np.float64)

    if backend == "numba":
        _numba.box_sum_3x3(np.asarray(image, dtype=np.float64), out)
        return out

    scale = fixed_point_scale(np.asarray(image))
    if scale is not None:
        padded = np.pad(image, 1, mode="reflect")
        lattice = np.rint(np.asarray(padded, dtype=np.float64) * scale).astype(
            np.int64
        )
        sat = np.zeros((height + 3, width + 3), dtype=np.int64)
        np.cumsum(np.cumsum(lattice, axis=0), axis=1, out=sat[1:, 1:])
        window_sums = (
            sat[3:, 3:] - sat[3:, :-3] - sat[:-3, 3:] + sat[:-3, :-3]
        )
        np.divide(window_sums, scale, out=out)
        return out

    padded = np.pad(image, 1, mode="reflect")
    out[:] = 0.0
    for dy in range(3):
        for dx in range(3):
            out += padded[dy : dy + height, dx : dx + width]
    return out


def bilinear_demosaic(
    bayer: np.ndarray, channel_map: np.ndarray, *, backend: str = "numpy"
) -> np.ndarray:
    """Mask-based bilinear demosaic of a Bayer mosaic to height x width x 3."""
    height, width = bayer.shape
    if backend == "numba":
        rgb = np.empty((height, width, 3), dtype=np.float64)
        _numba.bilinear_demosaic(
            np.asarray(bayer, dtype=np.float64), channel_map, rgb
        )
        return rgb

    rgb = np.zeros((height, width, 3), dtype=np.float64)
    for channel in range(3):
        mask = (channel_map == channel).astype(np.float64)
        values = bayer * mask
        summed = box_sum_3x3(values)
        counts = box_sum_3x3(mask)
        with np.errstate(invalid="ignore", divide="ignore"):
            interpolated = np.where(
                counts > 0, summed / np.maximum(counts, 1e-9), 0.0
            )
        rgb[..., channel] = np.where(mask > 0, bayer, interpolated)
    return np.clip(rgb, 0.0, 255.0)


__all__ = ["bilinear_demosaic", "box_sum_3x3", "motion_compensated_blend"]
