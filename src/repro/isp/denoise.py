"""Temporal-denoising ISP stage (the stage that produces motion vectors).

The paper assumes (Sec. 4.2) that the ISP's temporal-denoise (TD) stage runs
block-matching motion estimation against the previous frame and then uses the
resulting motion vectors for motion-compensated denoising.  Euphrates' only
frontend change is to *keep* those motion vectors and write them to the
frame-buffer metadata instead of recycling the SRAM that holds them.

This module implements the functional behaviour of that stage: the motion
estimation (delegated to :mod:`repro.motion`), the motion-compensated
temporal blend (delegated to :mod:`repro.isp.kernels`, which dispatches on
the configured ``kernel_backend``), and the double-buffered SRAM accounting
used to take the MV write-back traffic off the ISP's critical path.

The stage also keeps the session frame path allocation-free: with
``reuse_output_buffers=True`` (what :class:`~repro.isp.pipeline.ISPPipeline`
requests) the widened float frame, the blend output and the matching
reference all live in per-stage scratch buffers reused across frames.  The
blend output ping-pongs between two buffers — the caller receives the buffer
that is *not* the previous frame's output, and must copy it before retaining
it beyond the next ``process()`` call (the ISP pipeline always commits a
quantized copy).  The default mode allocates fresh outputs per frame, which
is what standalone users and the property tests expect.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..motion.block_matching import BlockMatcher, BlockMatchingConfig
from ..motion.kernels import KernelScratch, resolve_kernel_backend
from ..motion.motion_field import MotionField
from . import kernels
from .framebuffer import DEFAULT_FRAME_FORMAT, FixedPointFormat


@dataclass(frozen=True)
class TemporalDenoiseConfig:
    """Configuration of the temporal-denoise stage."""

    block_matching: BlockMatchingConfig = BlockMatchingConfig()
    #: Blend weight given to the motion-compensated previous frame.  Higher
    #: values denoise more aggressively but risk ghosting.
    blend_strength: float = 0.5
    #: Blocks whose normalised SAD exceeds this threshold are considered a bad
    #: match and are not blended (prevents ghosting on occlusions).
    max_normalised_sad: float = 0.15
    #: Whether the stage's local SRAM is double buffered so MV write-back can
    #: overlap with the rest of the pipeline (Sec. 4.2).
    double_buffered_sram: bool = True
    #: Run block matching on 8-bit quantized luma, like the real ISP whose
    #: frame buffer stores 8-bit pixels.  Keeps the matcher on its
    #: exact-integer fast path; the denoising blend itself stays in float.
    quantize_matching: bool = True
    #: Matching domain used when ``quantize_matching`` is off: float luma is
    #: snapped onto this fixed-point lattice (default Q8.4 — 16x finer than
    #: the 8-bit path) so the matcher still rides the exact integer kernel
    #: instead of the ~1x-scalar float64 gather path.  ``None`` restores the
    #: legacy raw-float matching domain.
    matching_format: Optional[FixedPointFormat] = DEFAULT_FRAME_FORMAT


class TemporalDenoiseStage:
    """Motion-estimating, motion-compensating temporal denoiser."""

    ops_per_pixel = 4.0

    def __init__(
        self,
        config: TemporalDenoiseConfig | None = None,
        *,
        reuse_output_buffers: bool = False,
    ) -> None:
        self.config = config or TemporalDenoiseConfig()
        self._matcher = BlockMatcher(self.config.block_matching)
        #: Resolved kernel backend for the blend (graceful numpy fallback,
        #: same resolution rule as the SAD kernels).
        self.kernel_backend = resolve_kernel_backend(
            self.config.block_matching.kernel_backend
        )
        self.reuse_output_buffers = reuse_output_buffers
        self._previous_denoised: Optional[np.ndarray] = None
        self._previous_reference: Optional[np.ndarray] = None
        #: Motion field computed for the most recent frame.
        self.last_motion_field: Optional[MotionField] = None
        #: Arithmetic operations spent on motion estimation for the last frame.
        self.last_motion_ops = 0
        #: Wall-clock seconds of the last frame's motion estimation / blend
        #: (the stage-profiler feed).
        self.last_motion_s = 0.0
        self.last_blend_s = 0.0
        #: True while every frame of the stream so far arrived as uint8:
        #: the blend output is then a convex combination of values in
        #: ``[0, 255]``, so downstream saturation passes (the matching
        #: reference's clip, the commit quantizer's clip) are exact no-ops
        #: and can be skipped.  Any non-uint8 frame clears the flag until
        #: :meth:`reset`.
        self.output_in_unit8_range = False
        # Scratch buffers (reuse_output_buffers mode), (re)allocated on the
        # first frame of each shape.
        self._scratch_shape: Optional[Tuple[int, int]] = None
        self._blend_buffers: List[np.ndarray] = []
        self._current_f64: Optional[np.ndarray] = None
        self._float_scratch: Optional[np.ndarray] = None
        self._reference_buffer: Optional[np.ndarray] = None
        # Gather-staging pool for the numpy blend kernel (reused every frame).
        self._blend_scratch = KernelScratch()

    @property
    def name(self) -> str:
        return type(self).__name__

    def reset(self) -> None:
        """Forget the previous frame (e.g. at a scene cut or stream start)."""
        self._previous_denoised = None
        self._previous_reference = None
        self.last_motion_field = None
        self.last_motion_ops = 0
        self.last_motion_s = 0.0
        self.last_blend_s = 0.0
        self.output_in_unit8_range = False

    # ------------------------------------------------------------------
    # Scratch buffers
    # ------------------------------------------------------------------
    def _ensure_scratch(self, shape: Tuple[int, int]) -> None:
        if self._scratch_shape == shape:
            return
        self._scratch_shape = shape
        self._blend_buffers = [
            np.empty(shape, dtype=np.float64),
            np.empty(shape, dtype=np.float64),
        ]
        self._current_f64 = np.empty(shape, dtype=np.float64)
        self._float_scratch = np.empty(shape, dtype=np.float64)
        if self.config.quantize_matching:
            self._reference_buffer = np.empty(shape, dtype=np.uint8)
        elif self.config.matching_format is not None:
            self._reference_buffer = np.empty(shape, dtype=np.float64)
        else:
            self._reference_buffer = None

    def _next_blend_buffer(self) -> np.ndarray:
        """The ping-pong buffer that is *not* the previous frame's output."""
        if self._previous_denoised is self._blend_buffers[0]:
            return self._blend_buffers[1]
        return self._blend_buffers[0]

    # ------------------------------------------------------------------
    # Matching domain
    # ------------------------------------------------------------------
    def _matching_reference(self, frame: np.ndarray) -> np.ndarray:
        """The representation of ``frame`` handed to the block matcher."""
        if self.config.quantize_matching:
            return np.clip(np.rint(frame), 0.0, 255.0).astype(np.uint8)
        if self.config.matching_format is not None:
            return self.config.matching_format.quantize(frame)
        return frame

    def _matching_reference_reused(self, frame: np.ndarray) -> np.ndarray:
        """:meth:`_matching_reference` into the scratch reference buffer.

        Safe because the previous reference is never read again once the
        current frame's motion field has been estimated.  The uint8 path's
        ``copyto(casting="unsafe")`` is the same C-truncation ``astype``
        performs, applied to already-rounded, already-clipped values.
        """
        if self.config.quantize_matching:
            np.rint(frame, out=self._float_scratch)
            if not self.output_in_unit8_range:
                # Rounded in-range values are already in [0, 255]; the clip
                # pass only matters when some frame arrived as raw float.
                np.clip(self._float_scratch, 0.0, 255.0, out=self._float_scratch)
            np.copyto(self._reference_buffer, self._float_scratch, casting="unsafe")
            return self._reference_buffer
        if self.config.matching_format is not None:
            return self.config.matching_format.quantize(
                frame, out=self._reference_buffer
            )
        return frame

    def _current_matching_reference(self, raw: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Matching-domain view of the frame being denoised.

        A raw uint8 capture already *is* its 8-bit matching representation
        (``clip(rint(float64(x))) == x`` exactly), so it rides the fast
        integer SAD path without the rint/clip/astype round-trip the float
        view would pay.
        """
        if self.config.quantize_matching and raw.dtype == np.uint8:
            return raw
        return self._matching_reference(current)

    def process(self, luma: np.ndarray, **context) -> Tuple[np.ndarray, Optional[MotionField]]:
        """Denoise ``luma`` and return ``(denoised, motion_field)``.

        The first frame of a stream has no reference, so it passes through
        unchanged with no motion field.  Float frames are widened to float64
        here, exactly once, for the blend; uint8 frames are handed to the
        blend kernel as-is (its reads widen exactly) and block matching sees
        the unconverted integer pixels either way.
        """
        raw = np.asarray(luma)
        reuse = self.reuse_output_buffers
        is_first = (
            self._previous_denoised is None
            or self._previous_denoised.shape != raw.shape
        )
        self.output_in_unit8_range = raw.dtype == np.uint8 and (
            is_first or self.output_in_unit8_range
        )
        if reuse:
            self._ensure_scratch(raw.shape)
            if raw.dtype == np.uint8:
                # The blend kernel reads ``current`` straight into float64
                # destinations (exact uint8 widening), so an 8-bit capture
                # skips the full-frame float64 copy entirely — the biggest
                # single memory pass of the steady-state blend stage.
                current = raw
            else:
                current = self._current_f64
                np.copyto(current, raw)
        else:
            current = np.asarray(raw, dtype=np.float64)
        if self._previous_denoised is None or self._previous_denoised.shape != current.shape:
            self.last_motion_field = None
            self.last_motion_ops = 0
            self.last_motion_s = 0.0
            self.last_blend_s = 0.0
            if reuse:
                out = self._next_blend_buffer()
                np.copyto(out, current)
                self._previous_denoised = out
                self._previous_reference = self._matching_reference_reused(out)
                return out, None
            self._previous_denoised = current.copy()
            # Reference the private copy, never the caller's buffer (which
            # the caller may overwrite in place between frames).
            self._previous_reference = self._matching_reference(self._previous_denoised)
            return current, None

        start = time.perf_counter()
        field = self._matcher.estimate(
            self._current_matching_reference(raw, current), self._previous_reference
        )
        self.last_motion_s = time.perf_counter() - start
        self.last_motion_field = field
        self.last_motion_ops = self._matcher.last_operation_count

        start = time.perf_counter()
        out = self._next_blend_buffer() if reuse else None
        denoised = self._motion_compensated_blend(
            current, self._previous_denoised, field, out=out
        )
        self.last_blend_s = time.perf_counter() - start
        self._previous_denoised = denoised
        self._previous_reference = (
            self._matching_reference_reused(denoised)
            if reuse
            else self._matching_reference(denoised)
        )
        return denoised, field

    # ------------------------------------------------------------------
    # Motion compensation
    # ------------------------------------------------------------------
    def _motion_compensated_blend(
        self,
        current: np.ndarray,
        previous: np.ndarray,
        field: MotionField,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Blend each macroblock with its motion-compensated predecessor.

        Dispatches to :func:`repro.isp.kernels.motion_compensated_blend` on
        the resolved backend; bit-identical to
        :func:`repro.isp.reference.reference_motion_compensated_blend`.
        """
        return kernels.motion_compensated_blend(
            current,
            previous,
            field,
            blend_strength=self.config.blend_strength,
            max_normalised_sad=self.config.max_normalised_sad,
            out=out,
            backend=self.kernel_backend,
            scratch=self._blend_scratch,
        )

    # ------------------------------------------------------------------
    # SRAM accounting (Sec. 4.2)
    # ------------------------------------------------------------------
    def sram_bytes(self, frame_width: int, frame_height: int) -> int:
        """Local SRAM needed to hold the motion vectors for one frame.

        With double buffering (the Euphrates augmentation) this doubles so
        that DMA write-back of the previous frame's MVs can overlap with the
        current frame's motion estimation.
        """
        grid_rows = -(-frame_height // self.config.block_matching.block_size)
        grid_cols = -(-frame_width // self.config.block_matching.block_size)
        bytes_single = grid_rows * grid_cols * 2  # 1 byte MV + 1 byte confidence
        if self.config.double_buffered_sram:
            return 2 * bytes_single
        return bytes_single
