"""Temporal-denoising ISP stage (the stage that produces motion vectors).

The paper assumes (Sec. 4.2) that the ISP's temporal-denoise (TD) stage runs
block-matching motion estimation against the previous frame and then uses the
resulting motion vectors for motion-compensated denoising.  Euphrates' only
frontend change is to *keep* those motion vectors and write them to the
frame-buffer metadata instead of recycling the SRAM that holds them.

This module implements the functional behaviour of that stage: the motion
estimation (delegated to :mod:`repro.motion`), the motion-compensated
temporal blend, and the double-buffered SRAM accounting used to take the MV
write-back traffic off the ISP's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..motion.block_matching import BlockMatcher, BlockMatchingConfig
from ..motion.motion_field import MotionField
from .framebuffer import DEFAULT_FRAME_FORMAT, FixedPointFormat


@dataclass(frozen=True)
class TemporalDenoiseConfig:
    """Configuration of the temporal-denoise stage."""

    block_matching: BlockMatchingConfig = BlockMatchingConfig()
    #: Blend weight given to the motion-compensated previous frame.  Higher
    #: values denoise more aggressively but risk ghosting.
    blend_strength: float = 0.5
    #: Blocks whose normalised SAD exceeds this threshold are considered a bad
    #: match and are not blended (prevents ghosting on occlusions).
    max_normalised_sad: float = 0.15
    #: Whether the stage's local SRAM is double buffered so MV write-back can
    #: overlap with the rest of the pipeline (Sec. 4.2).
    double_buffered_sram: bool = True
    #: Run block matching on 8-bit quantized luma, like the real ISP whose
    #: frame buffer stores 8-bit pixels.  Keeps the matcher on its
    #: exact-integer fast path; the denoising blend itself stays in float.
    quantize_matching: bool = True
    #: Matching domain used when ``quantize_matching`` is off: float luma is
    #: snapped onto this fixed-point lattice (default Q8.4 — 16x finer than
    #: the 8-bit path) so the matcher still rides the exact integer kernel
    #: instead of the ~1x-scalar float64 gather path.  ``None`` restores the
    #: legacy raw-float matching domain.
    matching_format: Optional[FixedPointFormat] = DEFAULT_FRAME_FORMAT


class TemporalDenoiseStage:
    """Motion-estimating, motion-compensating temporal denoiser."""

    ops_per_pixel = 4.0

    def __init__(self, config: TemporalDenoiseConfig | None = None) -> None:
        self.config = config or TemporalDenoiseConfig()
        self._matcher = BlockMatcher(self.config.block_matching)
        self._previous_denoised: Optional[np.ndarray] = None
        self._previous_reference: Optional[np.ndarray] = None
        #: Motion field computed for the most recent frame.
        self.last_motion_field: Optional[MotionField] = None
        #: Arithmetic operations spent on motion estimation for the last frame.
        self.last_motion_ops = 0

    @property
    def name(self) -> str:
        return type(self).__name__

    def reset(self) -> None:
        """Forget the previous frame (e.g. at a scene cut or stream start)."""
        self._previous_denoised = None
        self._previous_reference = None
        self.last_motion_field = None
        self.last_motion_ops = 0

    def _matching_reference(self, frame: np.ndarray) -> np.ndarray:
        """The representation of ``frame`` handed to the block matcher."""
        if self.config.quantize_matching:
            return np.clip(np.rint(frame), 0.0, 255.0).astype(np.uint8)
        if self.config.matching_format is not None:
            return self.config.matching_format.quantize(frame)
        return frame

    def _current_matching_reference(self, raw: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Matching-domain view of the frame being denoised.

        A raw uint8 capture already *is* its 8-bit matching representation
        (``clip(rint(float64(x))) == x`` exactly), so it rides the fast
        integer SAD path without the rint/clip/astype round-trip the float
        view would pay.
        """
        if self.config.quantize_matching and raw.dtype == np.uint8:
            return raw
        return self._matching_reference(current)

    def process(self, luma: np.ndarray, **context) -> Tuple[np.ndarray, Optional[MotionField]]:
        """Denoise ``luma`` and return ``(denoised, motion_field)``.

        The first frame of a stream has no reference, so it passes through
        unchanged with no motion field.  Integer (uint8) frames are widened
        to float64 here, exactly once, for the blend; block matching sees
        the unconverted integer pixels.
        """
        raw = np.asarray(luma)
        current = np.asarray(raw, dtype=np.float64)
        if self._previous_denoised is None or self._previous_denoised.shape != current.shape:
            self._previous_denoised = current.copy()
            # Reference the private copy, never the caller's buffer (which
            # the caller may overwrite in place between frames).
            self._previous_reference = self._matching_reference(self._previous_denoised)
            self.last_motion_field = None
            self.last_motion_ops = 0
            return current, None

        field = self._matcher.estimate(
            self._current_matching_reference(raw, current), self._previous_reference
        )
        self.last_motion_field = field
        self.last_motion_ops = self._matcher.last_operation_count

        denoised = self._motion_compensated_blend(current, self._previous_denoised, field)
        self._previous_denoised = denoised
        self._previous_reference = self._matching_reference(denoised)
        return denoised, field

    # ------------------------------------------------------------------
    # Motion compensation
    # ------------------------------------------------------------------
    def _motion_compensated_blend(
        self, current: np.ndarray, previous: np.ndarray, field: MotionField
    ) -> np.ndarray:
        """Blend each macroblock with its motion-compensated predecessor.

        Full macroblocks are blended in one vectorized gather over the
        motion-compensated source patches; only the partial blocks of a
        ragged frame edge (frame size not a multiple of the block size)
        fall back to the per-block path.
        """
        block = field.grid.block_size
        height, width = current.shape
        blended = current.copy()
        strength = self.config.blend_strength
        max_sad = field.max_sad * self.config.max_normalised_sad

        rows_full = height // block
        cols_full = width // block
        if rows_full and cols_full:
            vectors = field.vectors[:rows_full, :cols_full]
            # The block content came from (x - u, y - v) in the previous
            # frame (forward-motion convention).
            src_y = (
                np.arange(rows_full)[:, None] * block - np.rint(vectors[..., 1])
            ).astype(np.int64)
            src_x = (
                np.arange(cols_full)[None, :] * block - np.rint(vectors[..., 0])
            ).astype(np.int64)
            valid = (
                (field.sad[:rows_full, :cols_full] <= max_sad)
                & (src_y >= 0)
                & (src_x >= 0)
                & (src_y + block <= height)
                & (src_x + block <= width)
            )
            rows_idx, cols_idx = np.nonzero(valid)
            if rows_idx.size:
                windows = sliding_window_view(previous, (block, block))
                references = windows[src_y[rows_idx, cols_idx], src_x[rows_idx, cols_idx]]
                blocks_of = lambda frame: frame[
                    : rows_full * block, : cols_full * block
                ].reshape(rows_full, block, cols_full, block).transpose(0, 2, 1, 3)
                blocks_of(blended)[rows_idx, cols_idx] = (
                    (1.0 - strength) * blocks_of(current)[rows_idx, cols_idx]
                    + strength * references
                )

        # Ragged frame edge: partial blocks keep the scalar path.
        for row in range(field.grid.rows):
            for col in range(field.grid.cols):
                if row < rows_full and col < cols_full:
                    continue
                if field.sad[row, col] > max_sad:
                    continue
                y0 = row * block
                x0 = col * block
                y1 = min(y0 + block, height)
                x1 = min(x0 + block, width)
                u, v = field.vectors[row, col]
                src_y0 = int(round(y0 - v))
                src_x0 = int(round(x0 - u))
                src_y1 = src_y0 + (y1 - y0)
                src_x1 = src_x0 + (x1 - x0)
                if src_y0 < 0 or src_x0 < 0 or src_y1 > height or src_x1 > width:
                    continue
                reference = previous[src_y0:src_y1, src_x0:src_x1]
                blended[y0:y1, x0:x1] = (
                    (1.0 - strength) * current[y0:y1, x0:x1] + strength * reference
                )
        return blended

    # ------------------------------------------------------------------
    # SRAM accounting (Sec. 4.2)
    # ------------------------------------------------------------------
    def sram_bytes(self, frame_width: int, frame_height: int) -> int:
        """Local SRAM needed to hold the motion vectors for one frame.

        With double buffering (the Euphrates augmentation) this doubles so
        that DMA write-back of the previous frame's MVs can overlap with the
        current frame's motion estimation.
        """
        grid_rows = -(-frame_height // self.config.block_matching.block_size)
        grid_cols = -(-frame_width // self.config.block_matching.block_size)
        bytes_single = grid_rows * grid_cols * 2  # 1 byte MV + 1 byte confidence
        if self.config.double_buffered_sram:
            return 2 * bytes_single
        return bytes_single
