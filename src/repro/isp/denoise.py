"""Temporal-denoising ISP stage (the stage that produces motion vectors).

The paper assumes (Sec. 4.2) that the ISP's temporal-denoise (TD) stage runs
block-matching motion estimation against the previous frame and then uses the
resulting motion vectors for motion-compensated denoising.  Euphrates' only
frontend change is to *keep* those motion vectors and write them to the
frame-buffer metadata instead of recycling the SRAM that holds them.

This module implements the functional behaviour of that stage: the motion
estimation (delegated to :mod:`repro.motion`), the motion-compensated
temporal blend, and the double-buffered SRAM accounting used to take the MV
write-back traffic off the ISP's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..motion.block_matching import BlockMatcher, BlockMatchingConfig
from ..motion.motion_field import MotionField


@dataclass(frozen=True)
class TemporalDenoiseConfig:
    """Configuration of the temporal-denoise stage."""

    block_matching: BlockMatchingConfig = BlockMatchingConfig()
    #: Blend weight given to the motion-compensated previous frame.  Higher
    #: values denoise more aggressively but risk ghosting.
    blend_strength: float = 0.5
    #: Blocks whose normalised SAD exceeds this threshold are considered a bad
    #: match and are not blended (prevents ghosting on occlusions).
    max_normalised_sad: float = 0.15
    #: Whether the stage's local SRAM is double buffered so MV write-back can
    #: overlap with the rest of the pipeline (Sec. 4.2).
    double_buffered_sram: bool = True


class TemporalDenoiseStage:
    """Motion-estimating, motion-compensating temporal denoiser."""

    ops_per_pixel = 4.0

    def __init__(self, config: TemporalDenoiseConfig | None = None) -> None:
        self.config = config or TemporalDenoiseConfig()
        self._matcher = BlockMatcher(self.config.block_matching)
        self._previous_denoised: Optional[np.ndarray] = None
        #: Motion field computed for the most recent frame.
        self.last_motion_field: Optional[MotionField] = None
        #: Arithmetic operations spent on motion estimation for the last frame.
        self.last_motion_ops = 0

    @property
    def name(self) -> str:
        return type(self).__name__

    def reset(self) -> None:
        """Forget the previous frame (e.g. at a scene cut or stream start)."""
        self._previous_denoised = None
        self.last_motion_field = None
        self.last_motion_ops = 0

    def process(self, luma: np.ndarray, **context) -> Tuple[np.ndarray, Optional[MotionField]]:
        """Denoise ``luma`` and return ``(denoised, motion_field)``.

        The first frame of a stream has no reference, so it passes through
        unchanged with no motion field.
        """
        current = np.asarray(luma, dtype=np.float64)
        if self._previous_denoised is None or self._previous_denoised.shape != current.shape:
            self._previous_denoised = current.copy()
            self.last_motion_field = None
            self.last_motion_ops = 0
            return current, None

        field = self._matcher.estimate(current, self._previous_denoised)
        self.last_motion_field = field
        self.last_motion_ops = self._matcher.last_operation_count

        denoised = self._motion_compensated_blend(current, self._previous_denoised, field)
        self._previous_denoised = denoised
        return denoised, field

    # ------------------------------------------------------------------
    # Motion compensation
    # ------------------------------------------------------------------
    def _motion_compensated_blend(
        self, current: np.ndarray, previous: np.ndarray, field: MotionField
    ) -> np.ndarray:
        """Blend each macroblock with its motion-compensated predecessor."""
        block = field.grid.block_size
        height, width = current.shape
        blended = current.copy()
        strength = self.config.blend_strength
        max_sad = field.max_sad * self.config.max_normalised_sad

        for row in range(field.grid.rows):
            for col in range(field.grid.cols):
                if field.sad[row, col] > max_sad:
                    continue
                y0 = row * block
                x0 = col * block
                y1 = min(y0 + block, height)
                x1 = min(x0 + block, width)
                u, v = field.vectors[row, col]
                # The block content came from (x - u, y - v) in the previous
                # frame (forward-motion convention).
                src_y0 = int(round(y0 - v))
                src_x0 = int(round(x0 - u))
                src_y1 = src_y0 + (y1 - y0)
                src_x1 = src_x0 + (x1 - x0)
                if src_y0 < 0 or src_x0 < 0 or src_y1 > height or src_x1 > width:
                    continue
                reference = previous[src_y0:src_y1, src_x0:src_x1]
                blended[y0:y1, x0:x1] = (
                    (1.0 - strength) * current[y0:y1, x0:x1] + strength * reference
                )
        return blended

    # ------------------------------------------------------------------
    # SRAM accounting (Sec. 4.2)
    # ------------------------------------------------------------------
    def sram_bytes(self, frame_width: int, frame_height: int) -> int:
        """Local SRAM needed to hold the motion vectors for one frame.

        With double buffering (the Euphrates augmentation) this doubles so
        that DMA write-back of the previous frame's MVs can overlap with the
        current frame's motion estimation.
        """
        grid_rows = -(-frame_height // self.config.block_matching.block_size)
        grid_cols = -(-frame_width // self.config.block_matching.block_size)
        bytes_single = grid_rows * grid_cols * 2  # 1 byte MV + 1 byte confidence
        if self.config.double_buffered_sram:
            return 2 * bytes_single
        return bytes_single
