"""The ISP pipeline: RAW in, frame-buffer entries (pixels + MV metadata) out.

The pipeline chains the Bayer-domain and RGB-domain stages of Fig. 2, runs
the temporal-denoise stage that produces motion vectors, and commits the
result into the DRAM frame buffer.  When the Euphrates augmentation is
enabled (``expose_motion_vectors=True``) the motion vectors are written into
the frame-buffer metadata; otherwise they are discarded after denoising,
matching a conventional ISP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..motion.block_matching import BlockMatchingConfig
from ..motion.kernels import resolve_kernel_backend
from ..motion.motion_field import MotionField
from .denoise import TemporalDenoiseConfig, TemporalDenoiseStage
from .framebuffer import (
    DEFAULT_FRAME_FORMAT,
    FixedPointFormat,
    FrameBuffer,
    FrameBufferEntry,
)
from .sensor import RawFrame
from .stages import (
    DeadPixelCorrection,
    Demosaic,
    GammaCorrection,
    ISPStage,
    WhiteBalance,
    rgb_to_luma,
)


@dataclass(frozen=True)
class ISPConfig:
    """Configuration of the modeled ISP."""

    #: Euphrates augmentation: write MVs to the frame-buffer metadata.
    expose_motion_vectors: bool = True
    #: Enable the temporal-denoise stage (the MV producer).
    temporal_denoise: bool = True
    block_matching: BlockMatchingConfig = BlockMatchingConfig()
    #: ISP clock in Hz (Table 1: 768 MHz).
    clock_hz: float = 768e6
    #: Measured ISP power at 1080p60 (Sec. 5.1), in watts.
    active_power_w: float = 0.153
    #: Extra power fraction attributed to motion estimation (Sec. 5.1: the
    #: paper conservatively adds 2.5%).
    motion_estimation_power_overhead: float = 0.025
    gamma: float = 1.0
    #: Fixed-point datapath format: every stage output (and the committed
    #: frame) is quantized onto this lattice, which keeps block matching on
    #: the exact integer SAD kernel end to end.  ``None`` restores the
    #: unquantized float64 datapath.
    frame_format: Optional[FixedPointFormat] = DEFAULT_FRAME_FORMAT

    @property
    def total_power_w(self) -> float:
        """ISP power including the motion-estimation overhead."""
        if not self.temporal_denoise:
            return self.active_power_w
        return self.active_power_w * (1.0 + self.motion_estimation_power_overhead)


class ProcessedFrame:
    """Output of the ISP for one frame.

    ``rgb`` is lazy: the luma-only hot path (:meth:`ISPPipeline.process_luma`)
    never materialises an RGB image — consumers that do ask for one get the
    luma plane replicated across three channels, computed on first access.
    The RAW path (:meth:`ISPPipeline.process`) supplies the real RGB output.
    """

    def __init__(
        self,
        frame_index: int,
        luma: np.ndarray,
        motion_field: Optional[MotionField],
        total_ops: float,
        motion_ops: float,
        rgb: Optional[np.ndarray] = None,
    ) -> None:
        self.frame_index = frame_index
        self.luma = luma
        self.motion_field = motion_field
        #: Total arithmetic operations spent by the ISP on this frame.
        self.total_ops = total_ops
        #: Operations spent on motion estimation alone.
        self.motion_ops = motion_ops
        self._rgb = rgb

    @property
    def rgb(self) -> np.ndarray:
        if self._rgb is None:
            self._rgb = np.repeat(self.luma[:, :, None], 3, axis=2)
        return self._rgb


class ISPPipeline:
    """Functional + accounting model of the mobile ISP."""

    def __init__(
        self,
        config: ISPConfig | None = None,
        frame_buffer: FrameBuffer | None = None,
    ) -> None:
        self.config = config or ISPConfig()
        self.frame_buffer = frame_buffer or FrameBuffer()
        frame_format = self.config.frame_format
        kernel_backend = resolve_kernel_backend(
            self.config.block_matching.kernel_backend
        )
        self.bayer_stages: List[ISPStage] = [
            DeadPixelCorrection(output_format=frame_format),
            Demosaic(output_format=frame_format, kernel_backend=kernel_backend),
        ]
        self.rgb_stages: List[ISPStage] = [
            WhiteBalance(output_format=frame_format),
            GammaCorrection(self.config.gamma, output_format=frame_format),
        ]
        # The pipeline always commits a quantized (or copied) frame, so the
        # denoise stage can safely recycle its output buffers across frames.
        self.denoise_stage = TemporalDenoiseStage(
            TemporalDenoiseConfig(
                block_matching=self.config.block_matching,
                matching_format=frame_format,
            ),
            reuse_output_buffers=True,
        )
        #: Number of frames processed since construction / reset.
        self.frames_processed = 0
        # Ring of committed-frame buffers (depth + 1 so a buffer is only
        # recycled after its FrameBufferEntry has been evicted).  Committed
        # pixels are therefore valid for as long as the entry is resident in
        # the frame buffer; consumers that need a frame for longer copy it.
        self._committed_ring: List[np.ndarray] = []
        self._committed_index = 0

    def reset(self) -> None:
        """Reset temporal state (previous-frame reference) and counters."""
        self.denoise_stage.reset()
        self.frames_processed = 0

    def _next_committed_buffer(self, shape) -> np.ndarray:
        """The next float64 commit buffer from the reuse ring."""
        size = self.frame_buffer.depth + 1
        if len(self._committed_ring) != size or self._committed_ring[0].shape != shape:
            self._committed_ring = [
                np.empty(shape, dtype=np.float64) for _ in range(size)
            ]
            self._committed_index = 0
        buffer = self._committed_ring[self._committed_index % size]
        self._committed_index += 1
        return buffer

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def process(self, raw: RawFrame) -> ProcessedFrame:
        """Run the full ISP pipeline on one RAW capture and commit it."""
        image: np.ndarray = raw.bayer
        context = {"channel_map": raw.channel_map}
        pixel_count = float(image.size)
        total_ops = 0.0

        for stage in self.bayer_stages:
            image = stage.process(image, **context)
            total_ops += stage.ops_per_pixel * pixel_count

        rgb = image
        for stage in self.rgb_stages:
            rgb = stage.process(rgb, **context)
            total_ops += stage.ops_per_pixel * pixel_count

        luma = rgb_to_luma(rgb, output_format=self.config.frame_format)
        total_ops += 2.0 * pixel_count

        motion_field: Optional[MotionField] = None
        motion_ops = 0.0
        if self.config.temporal_denoise:
            luma, motion_field = self.denoise_stage.process(luma)
            motion_ops = float(self.denoise_stage.last_motion_ops)
            total_ops += motion_ops + self.denoise_stage.ops_per_pixel * pixel_count
            if self.config.frame_format is not None:
                # The DRAM store is fixed-point: the committed frame lies on
                # the datapath lattice like every other stage output.
                luma = self.config.frame_format.quantize(luma)
            else:
                # The denoise stage recycles its output buffers; the
                # committed frame must own its pixels.
                luma = np.array(luma, dtype=np.float64, copy=True)

        exposed_field = motion_field if self.config.expose_motion_vectors else None
        entry = FrameBufferEntry(
            frame_index=raw.frame_index,
            pixels=luma,
            motion_field=exposed_field,
            pixel_format=self.config.frame_format,
        )
        self.frame_buffer.push(entry)
        self.frames_processed += 1

        return ProcessedFrame(
            frame_index=raw.frame_index,
            luma=luma,
            rgb=rgb,
            motion_field=exposed_field,
            total_ops=total_ops,
            motion_ops=motion_ops,
        )

    # ------------------------------------------------------------------
    # Lightweight path used by the large-scale experiments
    # ------------------------------------------------------------------
    def process_luma(self, luma: np.ndarray, frame_index: int) -> ProcessedFrame:
        """Process a frame that is already in the luma domain.

        The full RAW -> RGB -> luma path exists for functional fidelity, but
        the accuracy experiments only need the motion vectors and the luma
        pixels.  This method skips the Bayer/RGB stages (their effect on the
        luma plane is nearly identity for synthetic scenes) while keeping the
        temporal-denoise stage and all the traffic/compute accounting, which
        is what the SoC-level results depend on.

        uint8 frames are passed through *unconverted*: the temporal-denoise
        stage widens to float64 exactly once for the blend while matching the
        raw integer frame on the exact integer SAD path, so the per-frame
        ``astype(float64)`` copy the pipeline's hot loop used to pay is gone.
        """
        luma = np.asarray(luma)
        pixel_count = float(luma.size)
        total_ops = sum(s.ops_per_pixel for s in self.bayer_stages + self.rgb_stages)
        total_ops = total_ops * pixel_count + 2.0 * pixel_count

        motion_field: Optional[MotionField] = None
        motion_ops = 0.0
        committed = self._next_committed_buffer(luma.shape)
        if self.config.temporal_denoise:
            denoised, motion_field = self.denoise_stage.process(luma)
            motion_ops = float(self.denoise_stage.last_motion_ops)
            total_ops += motion_ops + self.denoise_stage.ops_per_pixel * pixel_count
            if self.config.frame_format is not None:
                # Fixed-point DRAM store, as in :meth:`process`.  Quantizes
                # into the commit ring: the denoise output is scratch the
                # stage will recycle.  When the stream is all-uint8 the
                # denoise output provably fits the format's range, so the
                # quantizer's saturation pass is skipped (an exact no-op).
                self.config.frame_format.quantize(
                    denoised,
                    out=committed,
                    assume_in_range=(
                        self.denoise_stage.output_in_unit8_range
                        and self.config.frame_format.max_value >= 255.0
                    ),
                )
            else:
                np.copyto(committed, denoised)
        else:
            # Without the denoise stage nothing downstream widens the frame,
            # so keep the legacy float64 contract for the committed pixels.
            np.copyto(committed, luma)

        exposed_field = motion_field if self.config.expose_motion_vectors else None
        entry = FrameBufferEntry(
            frame_index=frame_index,
            pixels=committed,
            motion_field=exposed_field,
            pixel_format=self.config.frame_format,
        )
        self.frame_buffer.push(entry)
        self.frames_processed += 1

        return ProcessedFrame(
            frame_index=frame_index,
            luma=committed,
            motion_field=exposed_field,
            total_ops=total_ops,
            motion_ops=motion_ops,
        )
