"""Visual attributes used to categorise tracking sequences.

These mirror the OTB-100 attribute annotations the paper uses in Fig. 12 to
break down accuracy by scene difficulty (Sec. 7).
"""

from __future__ import annotations

from enum import Enum
from typing import FrozenSet


class VisualAttribute(Enum):
    """Scene characteristics that stress different parts of the algorithm."""

    ILLUMINATION_VARIATION = "illumination_variation"
    SCALE_VARIATION = "scale_variation"
    OCCLUSION = "occlusion"
    DEFORMATION = "deformation"
    MOTION_BLUR = "motion_blur"
    FAST_MOTION = "fast_motion"
    IN_PLANE_ROTATION = "in_plane_rotation"
    OUT_OF_PLANE_ROTATION = "out_of_plane_rotation"
    OUT_OF_VIEW = "out_of_view"
    BACKGROUND_CLUTTER = "background_clutter"

    @property
    def display_name(self) -> str:
        """Human-readable name as printed in the paper's Fig. 12."""
        return self.value.replace("_", " ").title()


#: Attributes that primarily stress the motion-estimation frontend.  The paper
#: reports that fast motion and motion blur are where extrapolation loses the
#: most accuracy (Sec. 7).
MOTION_CHALLENGING_ATTRIBUTES: FrozenSet[VisualAttribute] = frozenset(
    {VisualAttribute.FAST_MOTION, VisualAttribute.MOTION_BLUR}
)

#: All attributes, in the order Fig. 12 lists them.
FIGURE12_ATTRIBUTE_ORDER = (
    VisualAttribute.ILLUMINATION_VARIATION,
    VisualAttribute.SCALE_VARIATION,
    VisualAttribute.OCCLUSION,
    VisualAttribute.DEFORMATION,
    VisualAttribute.MOTION_BLUR,
    VisualAttribute.FAST_MOTION,
    VisualAttribute.IN_PLANE_ROTATION,
    VisualAttribute.OUT_OF_PLANE_ROTATION,
    VisualAttribute.OUT_OF_VIEW,
    VisualAttribute.BACKGROUND_CLUTTER,
)
