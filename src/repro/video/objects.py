"""Moving objects rendered into synthetic video frames.

An object is a set of textured rectangular parts attached to a trajectory.
Single-part objects behave rigidly; multi-part objects with local part motion
model the deformation cases (e.g. a running athlete) that motivate the
sub-ROI extrapolation of Sec. 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.geometry import BoundingBox
from .trajectories import Trajectory


@dataclass
class ObjectPart:
    """One textured rectangle belonging to an object."""

    width: float
    height: float
    texture: np.ndarray
    #: Offset of the part center from the object center, in pixels.
    offset_x: float = 0.0
    offset_y: float = 0.0
    #: Amplitude (pixels) and period (frames) of the part's local oscillation.
    sway_amplitude: float = 0.0
    sway_period: float = 20.0
    sway_phase: float = 0.0

    def local_offset(self, frame_index: int) -> Tuple[float, float]:
        """Offset of the part center from the object center at a frame."""
        if self.sway_amplitude == 0.0:
            return (self.offset_x, self.offset_y)
        angle = 2.0 * np.pi * frame_index / self.sway_period + self.sway_phase
        return (
            self.offset_x + self.sway_amplitude * float(np.sin(angle)),
            self.offset_y + 0.5 * self.sway_amplitude * float(np.cos(angle)),
        )


@dataclass
class MovingObject:
    """A trackable object composed of one or more textured parts."""

    object_id: int
    label: str
    trajectory: Trajectory
    parts: List[ObjectPart]
    #: Multiplicative size change per frame (1.0 = constant size).  Values
    #: slightly above/below 1.0 model the scale-variation attribute.
    scale_rate: float = 1.0
    #: Frame intervals (start, stop) during which the object is hidden.
    occluded_intervals: Sequence[Tuple[int, int]] = field(default_factory=tuple)
    #: Frame intervals during which the object leaves the frame entirely.
    out_of_view_intervals: Sequence[Tuple[int, int]] = field(default_factory=tuple)

    def scale_at(self, frame_index: int) -> float:
        """Size multiplier at ``frame_index`` (clamped to a sane range)."""
        scale = self.scale_rate ** frame_index
        return float(min(max(scale, 0.25), 4.0))

    def is_occluded(self, frame_index: int) -> bool:
        """True when the object is hidden behind an occluder at this frame."""
        return any(start <= frame_index < stop for start, stop in self.occluded_intervals)

    def is_out_of_view(self, frame_index: int) -> bool:
        """True when the object has left the camera's field of view."""
        return any(start <= frame_index < stop for start, stop in self.out_of_view_intervals)

    def center_at(self, frame_index: int) -> Tuple[float, float]:
        """Object center in pixels at ``frame_index``."""
        return self.trajectory.position(frame_index)

    def part_boxes(self, frame_index: int) -> List[BoundingBox]:
        """Bounding boxes of every part at ``frame_index`` (unclipped)."""
        cx, cy = self.center_at(frame_index)
        scale = self.scale_at(frame_index)
        boxes = []
        for part in self.parts:
            ox, oy = part.local_offset(frame_index)
            boxes.append(
                BoundingBox.from_center(
                    cx + ox * scale,
                    cy + oy * scale,
                    part.width * scale,
                    part.height * scale,
                )
            )
        return boxes

    def bounding_box(self, frame_index: int) -> BoundingBox:
        """Tight box around all parts at ``frame_index`` (unclipped)."""
        return BoundingBox.union_of(self.part_boxes(frame_index))

    def ground_truth_box(
        self, frame_index: int, frame_width: int, frame_height: int
    ) -> Optional[BoundingBox]:
        """Ground-truth annotation for ``frame_index``.

        Returns ``None`` when the object is fully outside the frame or marked
        out-of-view, mirroring how tracking benchmarks annotate absent
        targets.
        """
        if self.is_out_of_view(frame_index):
            return None
        box = self.bounding_box(frame_index).clip(frame_width, frame_height)
        if box.is_empty() or box.area < 4.0:
            return None
        return box

    def render_into(
        self,
        canvas: np.ndarray,
        frame_index: int,
        illumination: float = 1.0,
    ) -> None:
        """Draw the object's parts into ``canvas`` (a float luma image).

        Rendering uses nearest-pixel placement of each part's texture,
        resampled to the part's current size.  Occluded objects are still
        partially drawn (their lower half is covered by a flat occluder) so
        that block matching sees the same ambiguity a real occlusion causes.
        """
        if self.is_out_of_view(frame_index):
            return
        occluded = self.is_occluded(frame_index)
        frame_height, frame_width = canvas.shape
        for part, box in zip(self.parts, self.part_boxes(frame_index)):
            self._blit(canvas, part.texture, box, illumination)
        if occluded:
            self._draw_occluder(canvas, self.bounding_box(frame_index))

    # ------------------------------------------------------------------
    # Rendering internals
    # ------------------------------------------------------------------
    @staticmethod
    def _blit(
        canvas: np.ndarray, texture: np.ndarray, box: BoundingBox, illumination: float
    ) -> None:
        frame_height, frame_width = canvas.shape
        x0 = int(round(box.left))
        y0 = int(round(box.top))
        x1 = int(round(box.right))
        y1 = int(round(box.bottom))
        x0c, y0c = max(x0, 0), max(y0, 0)
        x1c, y1c = min(x1, frame_width), min(y1, frame_height)
        if x1c <= x0c or y1c <= y0c:
            return
        target_h = y1 - y0
        target_w = x1 - x0
        if target_h <= 0 or target_w <= 0:
            return
        resized = _resize_nearest(texture, target_h, target_w)
        patch = resized[y0c - y0 : y1c - y0, x0c - x0 : x1c - x0]
        canvas[y0c:y1c, x0c:x1c] = np.clip(patch * illumination, 0.0, 255.0)

    @staticmethod
    def _draw_occluder(canvas: np.ndarray, box: BoundingBox) -> None:
        """Cover the lower 60% of the object box with a flat grey occluder."""
        frame_height, frame_width = canvas.shape
        clipped = box.clip(frame_width, frame_height)
        if clipped.is_empty():
            return
        y0 = int(round(clipped.top + 0.4 * clipped.height))
        y1 = int(round(clipped.bottom))
        x0 = int(round(clipped.left))
        x1 = int(round(clipped.right))
        if y1 <= y0 or x1 <= x0:
            return
        canvas[y0:y1, x0:x1] = 128.0


def _resize_nearest(texture: np.ndarray, target_h: int, target_w: int) -> np.ndarray:
    """Nearest-neighbour resize of a 2-D texture to the requested size."""
    src_h, src_w = texture.shape
    row_idx = np.minimum((np.arange(target_h) * src_h // max(target_h, 1)), src_h - 1)
    col_idx = np.minimum((np.arange(target_w) * src_w // max(target_w, 1)), src_w - 1)
    return texture[np.ix_(row_idx, col_idx)]


def make_textured_part(
    rng: np.random.Generator,
    width: float,
    height: float,
    base_intensity: float = 180.0,
    contrast: float = 50.0,
    offset_x: float = 0.0,
    offset_y: float = 0.0,
    sway_amplitude: float = 0.0,
    sway_period: float = 20.0,
    sway_phase: float = 0.0,
) -> ObjectPart:
    """Create a part with a random smooth texture.

    Textures need spatial structure (not white noise) for block matching to
    lock onto; we low-pass random noise with a small box filter and add a
    gradient so the texture is distinctive against the background.
    """
    tex_h = max(4, int(round(height)))
    tex_w = max(4, int(round(width)))
    noise = rng.uniform(-1.0, 1.0, size=(tex_h, tex_w))
    smoothed = _box_filter(noise, 3)
    gradient = np.linspace(-0.5, 0.5, tex_w)[None, :] + np.linspace(-0.5, 0.5, tex_h)[:, None]
    texture = base_intensity + contrast * (smoothed + 0.5 * gradient)
    texture = np.clip(texture, 0.0, 255.0)
    return ObjectPart(
        width=width,
        height=height,
        texture=texture,
        offset_x=offset_x,
        offset_y=offset_y,
        sway_amplitude=sway_amplitude,
        sway_period=sway_period,
        sway_phase=sway_phase,
    )


def _box_filter(image: np.ndarray, size: int) -> np.ndarray:
    """Simple separable box filter used to give textures spatial structure."""
    if size <= 1:
        return image
    kernel = np.ones(size) / size
    padded = np.pad(image, ((size, size), (size, size)), mode="reflect")
    filtered = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 0, padded)
    filtered = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 1, filtered)
    return filtered[size:-size, size:-size]
