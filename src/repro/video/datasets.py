"""Benchmark-dataset builders.

These builders produce synthetic stand-ins for the three datasets the paper
evaluates on (Table 2):

* an in-house object-detection video dataset (7,264 frames, ~6 objects/frame),
* OTB-100 (100 single-target tracking sequences with visual attributes),
* VOT-2014 (25 harder tracking sequences).

The default sizes here are scaled down so the full benchmark suite runs in
minutes on a laptop; pass larger ``num_sequences``/``frames_per_sequence`` to
approach the paper's scale.  The *structure* (attribute mix, objects per
frame, sequence count ratios) follows the originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .attributes import VisualAttribute
from .sequence import VideoSequence
from .synthetic import SequenceConfig, SequenceGenerator


@dataclass
class Dataset:
    """A named collection of video sequences."""

    name: str
    sequences: List[VideoSequence] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sequences)

    def __iter__(self):
        return iter(self.sequences)

    @property
    def total_frames(self) -> int:
        """Total frame count across all sequences (paper Table 2 column)."""
        return sum(seq.num_frames for seq in self.sequences)

    def sequences_with(self, attribute: VisualAttribute) -> List[VideoSequence]:
        """All sequences annotated with ``attribute``."""
        return [seq for seq in self.sequences if seq.has_attribute(attribute)]

    def attribute_counts(self) -> Dict[VisualAttribute, int]:
        """Number of sequences per visual attribute."""
        counts = {attr: 0 for attr in VisualAttribute}
        for seq in self.sequences:
            for attr in seq.attributes:
                counts[attr] += 1
        return counts


# ----------------------------------------------------------------------
# Attribute assignment
# ----------------------------------------------------------------------
#: Attribute bundles cycled through when building tracking datasets.  Every
#: sequence gets one bundle; together the bundles cover all ten Fig. 12
#: attributes, with plain (no-attribute) sequences mixed in so the dataset is
#: not uniformly difficult.
_TRACKING_ATTRIBUTE_BUNDLES: Tuple[FrozenSet[VisualAttribute], ...] = (
    frozenset(),
    frozenset({VisualAttribute.ILLUMINATION_VARIATION}),
    frozenset({VisualAttribute.SCALE_VARIATION}),
    frozenset({VisualAttribute.OCCLUSION}),
    frozenset({VisualAttribute.DEFORMATION}),
    frozenset({VisualAttribute.MOTION_BLUR, VisualAttribute.FAST_MOTION}),
    frozenset({VisualAttribute.FAST_MOTION}),
    frozenset({VisualAttribute.IN_PLANE_ROTATION}),
    frozenset({VisualAttribute.OUT_OF_PLANE_ROTATION, VisualAttribute.DEFORMATION}),
    frozenset({VisualAttribute.OUT_OF_VIEW, VisualAttribute.OCCLUSION}),
    frozenset({VisualAttribute.BACKGROUND_CLUTTER}),
    frozenset({VisualAttribute.SCALE_VARIATION, VisualAttribute.ILLUMINATION_VARIATION}),
)


def _bundle_for(index: int) -> FrozenSet[VisualAttribute]:
    return _TRACKING_ATTRIBUTE_BUNDLES[index % len(_TRACKING_ATTRIBUTE_BUNDLES)]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_otb_like_dataset(
    num_sequences: int = 20,
    frames_per_sequence: int = 60,
    frame_width: int = 192,
    frame_height: int = 108,
    seed: int = 100,
) -> Dataset:
    """Build an OTB-100-like single-target tracking dataset.

    The real OTB-100 has 100 sequences (59,040 frames); pass
    ``num_sequences=100`` and a larger ``frames_per_sequence`` to approach
    that scale.
    """
    sequences = []
    for i in range(num_sequences):
        config = SequenceConfig(
            name=f"otb_like_{i:03d}",
            frame_width=frame_width,
            frame_height=frame_height,
            num_frames=frames_per_sequence,
            num_objects=1,
            seed=seed + i,
            attributes=_bundle_for(i),
        )
        sequences.append(SequenceGenerator(config).generate())
    return Dataset(name="otb_like", sequences=sequences)


def build_vot_like_dataset(
    num_sequences: int = 8,
    frames_per_sequence: int = 60,
    frame_width: int = 192,
    frame_height: int = 108,
    seed: int = 2014,
) -> Dataset:
    """Build a VOT-2014-like tracking dataset.

    VOT-2014 complements OTB with 25 harder sequences; here every sequence
    carries at least one challenging attribute.
    """
    hard_bundles = [b for b in _TRACKING_ATTRIBUTE_BUNDLES if b]
    sequences = []
    for i in range(num_sequences):
        config = SequenceConfig(
            name=f"vot_like_{i:03d}",
            frame_width=frame_width,
            frame_height=frame_height,
            num_frames=frames_per_sequence,
            num_objects=1,
            seed=seed + i,
            attributes=hard_bundles[i % len(hard_bundles)],
            base_speed=3.0,
        )
        sequences.append(SequenceGenerator(config).generate())
    return Dataset(name="vot_like", sequences=sequences)


def build_tracking_dataset(
    otb_sequences: int = 20,
    vot_sequences: int = 8,
    frames_per_sequence: int = 60,
    frame_width: int = 192,
    frame_height: int = 108,
    seed: int = 100,
) -> Dataset:
    """Combined OTB-like + VOT-like dataset (the paper's 125-sequence pool)."""
    otb = build_otb_like_dataset(
        num_sequences=otb_sequences,
        frames_per_sequence=frames_per_sequence,
        frame_width=frame_width,
        frame_height=frame_height,
        seed=seed,
    )
    vot = build_vot_like_dataset(
        num_sequences=vot_sequences,
        frames_per_sequence=frames_per_sequence,
        frame_width=frame_width,
        frame_height=frame_height,
        seed=seed + 5000,
    )
    return Dataset(name="tracking_combined", sequences=otb.sequences + vot.sequences)


def build_detection_dataset(
    num_sequences: int = 6,
    frames_per_sequence: int = 56,
    objects_per_sequence: int = 6,
    frame_width: int = 256,
    frame_height: int = 144,
    seed: int = 7264,
) -> Dataset:
    """Build an in-house-like multi-object detection dataset.

    The paper's in-house dataset has 7,264 frames with ~6 objects per frame;
    this builder keeps the ~6 objects/frame density and lets the caller scale
    the frame count.
    """
    detection_bundles: Sequence[FrozenSet[VisualAttribute]] = (
        frozenset(),
        frozenset({VisualAttribute.SCALE_VARIATION}),
        frozenset({VisualAttribute.OCCLUSION}),
        frozenset({VisualAttribute.BACKGROUND_CLUTTER}),
        frozenset({VisualAttribute.DEFORMATION}),
        frozenset({VisualAttribute.FAST_MOTION}),
    )
    sequences = []
    for i in range(num_sequences):
        config = SequenceConfig(
            name=f"detection_{i:03d}",
            frame_width=frame_width,
            frame_height=frame_height,
            num_frames=frames_per_sequence,
            num_objects=objects_per_sequence,
            seed=seed + i,
            attributes=detection_bundles[i % len(detection_bundles)],
            min_object_fraction=0.14,
            max_object_fraction=0.30,
        )
        sequences.append(SequenceGenerator(config).generate())
    return Dataset(name="detection_inhouse_like", sequences=sequences)
