"""Video sequence container with per-frame ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from ..core.geometry import BoundingBox
from ..core.types import Detection
from .attributes import VisualAttribute


@dataclass
class VideoSequence:
    """A continuous video clip plus its ground-truth annotations.

    Attributes
    ----------
    name:
        Sequence identifier (e.g. ``"otb_like_017"``).
    frames:
        Luma frames as a ``(num_frames, height, width)`` uint8 array.  The
        synthetic generator produces luma directly; the ISP substrate can
        also re-derive luma from simulated RAW captures.
    ground_truth:
        Per-object list of per-frame boxes.  ``None`` marks frames where the
        object is absent (out of view), matching how tracking benchmarks
        annotate missing targets.
    labels:
        Class label per object id.
    attributes:
        Visual attributes characterising the sequence (Fig. 12 categories).
    fps:
        Nominal capture rate; the paper's evaluation uses 60 FPS.
    source_config:
        The generator configuration this sequence was rendered from, when
        known.  Parallel runners ship this small handle across process
        boundaries and re-render the frames worker-side instead of
        pickling the full pixel array.
    """

    name: str
    frames: np.ndarray
    ground_truth: Dict[int, List[Optional[BoundingBox]]]
    labels: Dict[int, str] = field(default_factory=dict)
    attributes: FrozenSet[VisualAttribute] = frozenset()
    fps: float = 60.0
    source_config: Optional[object] = None

    def __post_init__(self) -> None:
        if self.frames.ndim != 3:
            raise ValueError(f"frames must be (T, H, W), got shape {self.frames.shape}")
        for object_id, boxes in self.ground_truth.items():
            if len(boxes) != self.num_frames:
                raise ValueError(
                    f"object {object_id} has {len(boxes)} annotations for "
                    f"{self.num_frames} frames"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return int(self.frames.shape[0])

    @property
    def height(self) -> int:
        return int(self.frames.shape[1])

    @property
    def width(self) -> int:
        return int(self.frames.shape[2])

    @property
    def object_ids(self) -> List[int]:
        return sorted(self.ground_truth.keys())

    @property
    def primary_object_id(self) -> int:
        """The tracked target for single-object tracking scenarios."""
        if not self.ground_truth:
            raise ValueError("sequence has no annotated objects")
        return self.object_ids[0]

    def __len__(self) -> int:
        return self.num_frames

    def frame(self, index: int) -> np.ndarray:
        """Luma frame at ``index``."""
        return self.frames[index]

    def iter_frames(self):
        """Iterate over ``(index, frame)`` pairs."""
        for index in range(self.num_frames):
            yield index, self.frames[index]

    # ------------------------------------------------------------------
    # Ground-truth queries
    # ------------------------------------------------------------------
    def truth_for(self, object_id: int) -> List[Optional[BoundingBox]]:
        """Per-frame ground-truth boxes for one object."""
        return self.ground_truth[object_id]

    def truth_at(self, frame_index: int) -> Dict[int, BoundingBox]:
        """All objects present at ``frame_index`` mapped to their boxes."""
        present = {}
        for object_id, boxes in self.ground_truth.items():
            box = boxes[frame_index]
            if box is not None:
                present[object_id] = box
        return present

    def truth_detections(self, frame_index: int) -> List[Detection]:
        """Ground truth at ``frame_index`` expressed as detections."""
        detections = []
        for object_id, box in sorted(self.truth_at(frame_index).items()):
            detections.append(
                Detection(
                    box=box,
                    label=self.labels.get(object_id, "object"),
                    score=1.0,
                    object_id=object_id,
                )
            )
        return detections

    def total_annotations(self) -> int:
        """Total number of (frame, object) ground-truth boxes."""
        return sum(
            1
            for boxes in self.ground_truth.values()
            for box in boxes
            if box is not None
        )

    def average_objects_per_frame(self) -> float:
        """Mean number of annotated objects per frame."""
        if self.num_frames == 0:
            return 0.0
        return self.total_annotations() / self.num_frames

    def has_attribute(self, attribute: VisualAttribute) -> bool:
        return attribute in self.attributes
