"""Synthetic continuous-video substrate.

The paper evaluates Euphrates on real video benchmarks (an in-house detection
dataset, OTB-100 and VOT-2014).  Those datasets are not redistributable and
require camera captures, so this package provides a procedural substitute:
video sequences with precisely known ground truth whose *motion statistics*
(object speed, deformation, occlusion, blur, illumination changes, scale
changes, clutter) are controllable and match the visual attributes that the
original benchmarks annotate.  See DESIGN.md, "Substitutions".
"""

from .attributes import VisualAttribute
from .objects import MovingObject, ObjectPart
from .sequence import VideoSequence
from .synthetic import SequenceConfig, SequenceGenerator
from .trajectories import (
    BouncingTrajectory,
    CompositeTrajectory,
    LinearTrajectory,
    SinusoidalTrajectory,
    Trajectory,
)
from .datasets import (
    Dataset,
    build_detection_dataset,
    build_otb_like_dataset,
    build_tracking_dataset,
    build_vot_like_dataset,
)

__all__ = [
    "VisualAttribute",
    "MovingObject",
    "ObjectPart",
    "VideoSequence",
    "SequenceConfig",
    "SequenceGenerator",
    "Trajectory",
    "LinearTrajectory",
    "SinusoidalTrajectory",
    "BouncingTrajectory",
    "CompositeTrajectory",
    "Dataset",
    "build_otb_like_dataset",
    "build_vot_like_dataset",
    "build_tracking_dataset",
    "build_detection_dataset",
]
