"""Procedural generation of continuous-vision video sequences.

The generator composes a textured background with one or more moving,
optionally deformable objects, then applies sequence-level effects
(illumination variation, motion blur, sensor noise) that correspond to the
OTB visual attributes.  Ground truth boxes are computed analytically from the
object models, so evaluation never depends on a human annotation step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.geometry import BoundingBox
from .attributes import VisualAttribute
from .objects import MovingObject, make_textured_part
from .sequence import VideoSequence
from .trajectories import BouncingTrajectory, SinusoidalTrajectory


#: Object classes used by the detection dataset; loosely mirrors the PASCAL
#: VOC-style classes the paper's in-house dataset annotates.
OBJECT_LABELS = (
    "person",
    "car",
    "bicycle",
    "dog",
    "bus",
    "motorbike",
    "cat",
    "chair",
)


@dataclass(frozen=True)
class SequenceConfig:
    """Parameters controlling one synthetic sequence.

    The defaults produce a quick-to-render 192x108 clip; the paper's nominal
    capture setting (1920x1080 at 60 FPS) is available by overriding
    ``frame_width``/``frame_height`` but is rarely needed because the
    algorithm's behaviour depends on motion statistics, not resolution.
    """

    name: str = "sequence"
    frame_width: int = 192
    frame_height: int = 108
    num_frames: int = 60
    num_objects: int = 1
    fps: float = 60.0
    seed: int = 0
    attributes: FrozenSet[VisualAttribute] = frozenset()
    #: Object speed in pixels/frame for ordinary sequences.
    base_speed: float = 2.0
    #: Object speed for sequences tagged FAST_MOTION.
    fast_speed: float = 11.0
    #: Edge length range of generated objects, as a fraction of frame height.
    min_object_fraction: float = 0.18
    max_object_fraction: float = 0.38
    #: Standard deviation of additive sensor noise (luma levels).
    noise_sigma: float = 2.0
    #: Background texture contrast; raised for BACKGROUND_CLUTTER.
    background_contrast: float = 18.0

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if self.frame_width < 32 or self.frame_height < 32:
            raise ValueError("frames must be at least 32x32 pixels")


class SequenceGenerator:
    """Renders :class:`VideoSequence` objects from a :class:`SequenceConfig`."""

    def __init__(self, config: SequenceConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> VideoSequence:
        """Render the configured sequence."""
        config = self.config
        background = self._make_background()
        objects = [self._make_object(i) for i in range(config.num_objects)]

        frames = np.empty(
            (config.num_frames, config.frame_height, config.frame_width), dtype=np.uint8
        )
        ground_truth: Dict[int, List[Optional[BoundingBox]]] = {
            obj.object_id: [] for obj in objects
        }
        labels = {obj.object_id: obj.label for obj in objects}

        for t in range(config.num_frames):
            illumination = self._illumination_gain(t)
            canvas = background.copy() * illumination
            for obj in objects:
                obj.render_into(canvas, t, illumination=illumination)
                ground_truth[obj.object_id].append(
                    obj.ground_truth_box(t, config.frame_width, config.frame_height)
                )
            canvas = self._apply_motion_blur(canvas, objects, t)
            canvas = self._apply_noise(canvas)
            frames[t] = np.clip(canvas, 0, 255).astype(np.uint8)

        return VideoSequence(
            name=config.name,
            frames=frames,
            ground_truth=ground_truth,
            labels=labels,
            attributes=config.attributes,
            fps=config.fps,
            source_config=config,
        )

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def _make_background(self) -> np.ndarray:
        """Smooth random background; rough and high-contrast when cluttered."""
        config = self.config
        height, width = config.frame_height, config.frame_width
        cluttered = VisualAttribute.BACKGROUND_CLUTTER in config.attributes
        contrast = config.background_contrast * (3.0 if cluttered else 1.0)
        coarse_h = max(2, height // (4 if cluttered else 16))
        coarse_w = max(2, width // (4 if cluttered else 16))
        coarse = self._rng.uniform(-1.0, 1.0, size=(coarse_h, coarse_w))
        background = _upsample_bilinear(coarse, height, width)
        base_level = self._rng.uniform(70.0, 110.0)
        return np.clip(base_level + contrast * background, 0.0, 255.0)

    def _make_object(self, index: int) -> MovingObject:
        config = self.config
        rng = self._rng
        attributes = config.attributes

        size = rng.uniform(
            config.min_object_fraction, config.max_object_fraction
        ) * config.frame_height
        width = size * rng.uniform(0.7, 1.4)
        height = size

        speed = config.fast_speed if VisualAttribute.FAST_MOTION in attributes else config.base_speed
        speed *= rng.uniform(0.8, 1.2)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        velocity_x = speed * math.cos(angle)
        velocity_y = speed * math.sin(angle) * 0.6

        margin = max(width, height) * 0.6
        start_x = rng.uniform(margin, config.frame_width - margin)
        start_y = rng.uniform(margin, config.frame_height - margin)

        if VisualAttribute.IN_PLANE_ROTATION in attributes or (
            VisualAttribute.OUT_OF_PLANE_ROTATION in attributes
        ):
            trajectory = SinusoidalTrajectory(
                start_x=start_x,
                start_y=start_y,
                drift_x=velocity_x * 0.5,
                drift_y=velocity_y * 0.5,
                amplitude_x=8.0,
                amplitude_y=5.0,
                period_frames=30.0,
                phase=rng.uniform(0, 2 * math.pi),
            )
        else:
            trajectory = BouncingTrajectory(
                start_x=start_x,
                start_y=start_y,
                velocity_x=velocity_x,
                velocity_y=velocity_y,
                frame_width=float(config.frame_width),
                frame_height=float(config.frame_height),
                margin=margin * 0.5,
            )

        deformable = VisualAttribute.DEFORMATION in attributes
        parts = self._make_parts(rng, width, height, deformable)

        scale_rate = 1.0
        if VisualAttribute.SCALE_VARIATION in attributes:
            scale_rate = 1.006 if rng.random() < 0.5 else 0.994

        occluded_intervals: Tuple[Tuple[int, int], ...] = ()
        if VisualAttribute.OCCLUSION in attributes:
            start = config.num_frames // 3
            occluded_intervals = ((start, start + max(4, config.num_frames // 6)),)

        out_of_view_intervals: Tuple[Tuple[int, int], ...] = ()
        if VisualAttribute.OUT_OF_VIEW in attributes:
            start = (2 * config.num_frames) // 3
            out_of_view_intervals = ((start, start + max(3, config.num_frames // 10)),)

        label = OBJECT_LABELS[(index + self.config.seed) % len(OBJECT_LABELS)]
        return MovingObject(
            object_id=index,
            label=label,
            trajectory=trajectory,
            parts=parts,
            scale_rate=scale_rate,
            occluded_intervals=occluded_intervals,
            out_of_view_intervals=out_of_view_intervals,
        )

    def _make_parts(
        self, rng: np.random.Generator, width: float, height: float, deformable: bool
    ):
        base_intensity = rng.uniform(150.0, 210.0)
        if not deformable:
            return [
                make_textured_part(
                    rng, width, height, base_intensity=base_intensity, contrast=45.0
                )
            ]
        # Deformable object: a torso plus two swaying limbs.
        torso = make_textured_part(
            rng, width * 0.6, height, base_intensity=base_intensity, contrast=45.0
        )
        left = make_textured_part(
            rng,
            width * 0.3,
            height * 0.55,
            base_intensity=base_intensity - 25.0,
            contrast=40.0,
            offset_x=-width * 0.45,
            offset_y=height * 0.15,
            sway_amplitude=width * 0.18,
            sway_period=16.0,
            sway_phase=0.0,
        )
        right = make_textured_part(
            rng,
            width * 0.3,
            height * 0.55,
            base_intensity=base_intensity - 25.0,
            contrast=40.0,
            offset_x=width * 0.45,
            offset_y=height * 0.15,
            sway_amplitude=width * 0.18,
            sway_period=16.0,
            sway_phase=math.pi,
        )
        return [torso, left, right]

    # ------------------------------------------------------------------
    # Sequence-level effects
    # ------------------------------------------------------------------
    def _illumination_gain(self, frame_index: int) -> float:
        if VisualAttribute.ILLUMINATION_VARIATION not in self.config.attributes:
            return 1.0
        period = max(20.0, self.config.num_frames / 2.0)
        return 1.0 + 0.25 * math.sin(2.0 * math.pi * frame_index / period)

    def _apply_motion_blur(
        self, canvas: np.ndarray, objects: List[MovingObject], frame_index: int
    ) -> np.ndarray:
        if VisualAttribute.MOTION_BLUR not in self.config.attributes:
            return canvas
        # Approximate motion blur by averaging the frame with copies shifted
        # along the dominant object's motion direction.
        if not objects or frame_index == 0:
            return canvas
        x0, y0 = objects[0].center_at(frame_index - 1)
        x1, y1 = objects[0].center_at(frame_index)
        dx, dy = x1 - x0, y1 - y0
        steps = int(min(6, max(abs(dx), abs(dy))))
        if steps <= 0:
            return canvas
        accumulated = canvas.copy()
        for step in range(1, steps + 1):
            shift_x = int(round(dx * step / (steps + 1)))
            shift_y = int(round(dy * step / (steps + 1)))
            accumulated += _shift_image(canvas, shift_x, shift_y)
        return accumulated / (steps + 1)

    def _apply_noise(self, canvas: np.ndarray) -> np.ndarray:
        if self.config.noise_sigma <= 0:
            return canvas
        noise = self._rng.normal(0.0, self.config.noise_sigma, size=canvas.shape)
        return canvas + noise


def _shift_image(image: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """Shift an image by integer offsets, edge-padding the uncovered region."""
    shifted = np.empty_like(image)
    height, width = image.shape
    src_y0 = max(0, -dy)
    src_y1 = min(height, height - dy)
    src_x0 = max(0, -dx)
    src_x1 = min(width, width - dx)
    dst_y0 = max(0, dy)
    dst_x0 = max(0, dx)
    shifted[:] = image
    if src_y1 > src_y0 and src_x1 > src_x0:
        shifted[dst_y0 : dst_y0 + (src_y1 - src_y0), dst_x0 : dst_x0 + (src_x1 - src_x0)] = (
            image[src_y0:src_y1, src_x0:src_x1]
        )
    return shifted


def _upsample_bilinear(coarse: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinearly upsample a coarse noise grid to the frame resolution."""
    src_h, src_w = coarse.shape
    row_pos = np.linspace(0, src_h - 1, height)
    col_pos = np.linspace(0, src_w - 1, width)
    row0 = np.floor(row_pos).astype(int)
    col0 = np.floor(col_pos).astype(int)
    row1 = np.minimum(row0 + 1, src_h - 1)
    col1 = np.minimum(col0 + 1, src_w - 1)
    row_frac = (row_pos - row0)[:, None]
    col_frac = (col_pos - col0)[None, :]
    top = coarse[np.ix_(row0, col0)] * (1 - col_frac) + coarse[np.ix_(row0, col1)] * col_frac
    bottom = coarse[np.ix_(row1, col0)] * (1 - col_frac) + coarse[np.ix_(row1, col1)] * col_frac
    return top * (1 - row_frac) + bottom * row_frac
