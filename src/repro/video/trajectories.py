"""Object motion models for the synthetic video generator.

A trajectory maps a frame index to an object-center position (in pixels).
Different trajectory families exercise different parts of the Euphrates
algorithm: linear motion is the easy case for motion extrapolation,
sinusoidal and bouncing motion introduce acceleration that accumulates
extrapolation error across large extrapolation windows, and composite
trajectories model deformable parts moving relative to a common root.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Tuple


class Trajectory(Protocol):
    """Maps a frame index to an ``(x, y)`` center position in pixels."""

    def position(self, frame_index: int) -> Tuple[float, float]:
        """Return the object center at ``frame_index``."""
        ...


@dataclass(frozen=True)
class LinearTrajectory:
    """Constant-velocity motion: the best case for motion extrapolation."""

    start_x: float
    start_y: float
    velocity_x: float
    velocity_y: float

    def position(self, frame_index: int) -> Tuple[float, float]:
        return (
            self.start_x + self.velocity_x * frame_index,
            self.start_y + self.velocity_y * frame_index,
        )


@dataclass(frozen=True)
class SinusoidalTrajectory:
    """Oscillating motion superimposed on a linear drift.

    The direction changes produce the acceleration errors that make large
    extrapolation windows lose accuracy (Sec. 3.3).
    """

    start_x: float
    start_y: float
    drift_x: float = 0.0
    drift_y: float = 0.0
    amplitude_x: float = 10.0
    amplitude_y: float = 6.0
    period_frames: float = 40.0
    phase: float = 0.0

    def position(self, frame_index: int) -> Tuple[float, float]:
        angle = 2.0 * math.pi * frame_index / self.period_frames + self.phase
        return (
            self.start_x + self.drift_x * frame_index + self.amplitude_x * math.sin(angle),
            self.start_y + self.drift_y * frame_index + self.amplitude_y * math.cos(angle),
        )


@dataclass(frozen=True)
class BouncingTrajectory:
    """Constant-speed motion that reflects off the frame boundary.

    Keeps objects inside the frame for arbitrarily long sequences while still
    providing abrupt direction changes at the walls.
    """

    start_x: float
    start_y: float
    velocity_x: float
    velocity_y: float
    frame_width: float
    frame_height: float
    margin: float = 0.0

    def position(self, frame_index: int) -> Tuple[float, float]:
        return (
            self._reflect(
                self.start_x + self.velocity_x * frame_index,
                self.margin,
                self.frame_width - self.margin,
            ),
            self._reflect(
                self.start_y + self.velocity_y * frame_index,
                self.margin,
                self.frame_height - self.margin,
            ),
        )

    @staticmethod
    def _reflect(value: float, low: float, high: float) -> float:
        """Fold ``value`` into ``[low, high]`` by reflecting at the bounds."""
        if high <= low:
            return low
        span = high - low
        # Map into a 2*span-periodic triangle wave.
        offset = (value - low) % (2.0 * span)
        if offset > span:
            offset = 2.0 * span - offset
        return low + offset


@dataclass(frozen=True)
class CompositeTrajectory:
    """A trajectory defined relative to a parent trajectory.

    Used for deformable object parts (a limb oscillating around a torso): the
    part follows the parent's global motion plus its own local oscillation.
    """

    parent: Trajectory
    offset_x: float = 0.0
    offset_y: float = 0.0
    local_amplitude_x: float = 0.0
    local_amplitude_y: float = 0.0
    local_period_frames: float = 20.0
    local_phase: float = 0.0

    def position(self, frame_index: int) -> Tuple[float, float]:
        px, py = self.parent.position(frame_index)
        angle = 2.0 * math.pi * frame_index / self.local_period_frames + self.local_phase
        return (
            px + self.offset_x + self.local_amplitude_x * math.sin(angle),
            py + self.offset_y + self.local_amplitude_y * math.cos(angle),
        )


@dataclass(frozen=True)
class StationaryTrajectory:
    """An object that does not move; useful for background distractors."""

    x: float
    y: float

    def position(self, frame_index: int) -> Tuple[float, float]:
        return (self.x, self.y)
