"""Battery-constrained drone tracking with the adaptive extrapolation window.

A camera drone tracks a subject at 60 FPS without active cooling, so every
millijoule matters (the paper's Sec. 6.2 motivation).  This example compares
constant extrapolation windows against the adaptive mode (EW-A) on a mixed
pool of easy and hard sequences, and breaks accuracy down by visual attribute
to show where extrapolation struggles (fast motion, blur) and where it is
essentially free (everything else).

Run with:  python examples/drone_tracking_adaptive.py
"""

from __future__ import annotations

from _example_utils import bounded_frames, bounded_sequences

from repro import PipelineSpec, VisionSoC, tracking_backend_for
from repro.eval import attribute_precision, success_rate
from repro.harness.reporting import format_table
from repro.nn.models import build_mdnet
from repro.video import build_tracking_dataset
from repro.video.attributes import FIGURE12_ATTRIBUTE_ORDER


def main() -> None:
    dataset = build_tracking_dataset(
        otb_sequences=bounded_sequences(8),
        vot_sequences=bounded_sequences(3, minimum=1),
        frames_per_sequence=bounded_frames(36),
    )
    soc = VisionSoC()
    mdnet = build_mdnet()

    runs = {}
    rows = []
    baseline = None
    for label, window in (
        ("MDNet every frame", 1),
        ("EW-2", 2),
        ("EW-4", 4),
        ("EW-A (adaptive)", "adaptive"),
    ):
        pipeline = PipelineSpec(extrapolation_window=window).build(
            tracking_backend_for("mdnet", seed=1)
        )
        results = pipeline.run_dataset(dataset)
        runs[label] = results

        accuracy = success_rate(results, dataset, iou_threshold=0.5)
        breakdown = soc.evaluate_results(mdnet, results, label=label)
        if baseline is None:
            baseline = breakdown
        rows.append(
            [
                label,
                round(accuracy, 3),
                round(breakdown.inference_rate, 2),
                round(breakdown.normalized_to(baseline), 2),
                round(1.0 - breakdown.normalized_to(baseline), 2),
            ]
        )

    print(format_table(
        ["configuration", "success@0.5", "inference rate", "norm. energy", "energy saving"], rows
    ))

    # Where does extrapolation lose accuracy?  (Fig. 12 of the paper.)
    print()
    print("Accuracy by visual attribute (baseline vs EW-2):")
    baseline_breakdown = attribute_precision(runs["MDNet every frame"], dataset, 0.5)
    euphrates_breakdown = attribute_precision(runs["EW-2"], dataset, 0.5)
    attribute_rows = []
    for attribute in FIGURE12_ATTRIBUTE_ORDER:
        if attribute not in baseline_breakdown:
            continue
        attribute_rows.append(
            [
                attribute.display_name,
                round(baseline_breakdown[attribute], 3),
                round(euphrates_breakdown.get(attribute, 0.0), 3),
            ]
        )
    print(format_table(["attribute", "MDNet", "EW-2"], attribute_rows))


if __name__ == "__main__":
    main()
