"""End-to-end demo of the functional frontend: RAW sensor to vision result.

This example uses no simulated CNN at all.  It pushes a synthetic scene
through the camera-sensor model (Bayer mosaic, noise, dead pixels) and the
full ISP pipeline (dead-pixel correction, demosaic, white balance, temporal
denoise with block matching), then drives a classical NCC template tracker on
I-frames and the Euphrates motion extrapolator on E-frames — exactly the
dataflow of Fig. 5, with the motion vectors travelling through the
frame-buffer metadata.

Run with:  python examples/raw_frontend_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.extrapolation import MotionExtrapolator
from repro.isp.pipeline import ISPPipeline
from repro.isp.sensor import CameraSensor
from repro.nn.classical import NCCTemplateTracker, NCCTrackerConfig
from repro.video import SequenceConfig, SequenceGenerator


def main() -> None:
    sequence = SequenceGenerator(
        SequenceConfig(name="raw_demo", num_frames=24, seed=5)
    ).generate()
    target = sequence.primary_object_id

    sensor = CameraSensor(seed=0)
    isp = ISPPipeline()
    tracker = NCCTemplateTracker(NCCTrackerConfig(search_radius=10))
    extrapolator = MotionExtrapolator(frame_width=sequence.width, frame_height=sequence.height)

    current_box = None
    ious = []
    print("frame  kind           IoU    MV metadata (bytes)")
    for frame_index in range(sequence.num_frames):
        raw = sensor.capture(sequence.frame(frame_index), frame_index)
        processed = isp.process(raw)
        entry = isp.frame_buffer.latest()

        if frame_index == 0:
            current_box = sequence.truth_for(target)[0]
            tracker.initialize(processed.luma, current_box)
            print(f"{frame_index:>5}  initialise      -")
            continue

        if frame_index % 2 == 1 and processed.motion_field is not None:
            kind = "extrapolation"
            result = extrapolator.extrapolate_roi(current_box, processed.motion_field)
            current_box = result.box
        else:
            kind = "inference(NCC)"
            current_box = tracker.track(processed.luma).box

        truth = sequence.truth_for(target)[frame_index]
        iou = current_box.iou(truth) if truth is not None else float("nan")
        if truth is not None:
            ious.append(iou)
        print(f"{frame_index:>5}  {kind:<14} {iou:0.3f}  {entry.motion_metadata_bytes:>8}")

    print()
    print(f"mean IoU over the clip: {np.mean(ious):.3f}")
    print(
        f"frame-buffer traffic: {isp.frame_buffer.bytes_written / 1e6:.2f} MB written, "
        f"MV metadata is {isp.frame_buffer.latest().motion_metadata_bytes} bytes/frame "
        f"({isp.frame_buffer.latest().motion_metadata_bytes / isp.frame_buffer.latest().pixel_bytes:.3%} "
        "of the pixel data)"
    )


if __name__ == "__main__":
    main()
