"""Four always-on camera streams multiplexed over one Euphrates pipeline.

A home-monitoring hub (or a car with surround cameras) runs continuous
vision on several cameras at once, but the SoC has one inference engine.
This demo opens four synthetic camera streams, pushes their frames through
the :class:`~repro.core.streaming.StreamMultiplexer` — which interleaves
cheap E-frames round-robin and batches the expensive I-frame inferences —
and prints per-stream and aggregate scheduling statistics.

Because every stream runs in its own isolated session, the per-stream
results are bit-identical to processing each camera with its own dedicated
pipeline; the scheduler only decides *when* each frame is served.

Run with:  PYTHONPATH=src python examples/streaming_multiplexer_demo.py
"""

from __future__ import annotations

from _example_utils import bounded_frames

from repro import PipelineSpec, StreamMultiplexer, tracking_backend_for
from repro.harness.reporting import format_table
from repro.video.attributes import VisualAttribute
from repro.video.synthetic import SequenceConfig, SequenceGenerator


def make_camera_streams(num_frames: int):
    """Four cameras watching different scenes (one of them a hard one)."""
    scenes = [
        ("front_door", frozenset()),
        ("driveway", frozenset()),
        ("backyard", frozenset({VisualAttribute.FAST_MOTION})),
        ("garage", frozenset({VisualAttribute.ILLUMINATION_VARIATION})),
    ]
    return [
        SequenceGenerator(
            SequenceConfig(
                name=name,
                num_frames=num_frames,
                num_objects=1,
                seed=17 + index,
                attributes=attributes,
            )
        ).generate()
        for index, (name, attributes) in enumerate(scenes)
    ]


def main() -> None:
    streams = make_camera_streams(num_frames=bounded_frames(48))
    spec = PipelineSpec(extrapolation_window="adaptive")
    pipeline = spec.build(tracking_backend_for("mdnet", seed=1))

    multiplexer = StreamMultiplexer(pipeline, e_frame_burst=4, max_inference_batch=4)
    results, report = multiplexer.run_streams(streams)

    rows = []
    for stats in report.streams:
        result = results[stats.name]
        rows.append(
            [
                stats.name,
                stats.frames_processed,
                round(stats.inference_rate, 2),
                round(stats.mean_service_latency_s * 1e3, 2),
                round(stats.mean_queue_wait_s * 1e3, 1),
                stats.max_queue_depth,
                result.frames[-1].window_size,
            ]
        )
    print(f"{len(streams)} camera streams through one pipeline ({spec.describe()}):\n")
    print(
        format_table(
            [
                "stream",
                "frames",
                "I-rate",
                "service ms/frame",
                "queue wait ms",
                "max queue",
                "final EW",
            ],
            rows,
        )
    )
    print()
    print(
        f"aggregate: {report.frames_processed} frames in {report.wall_s * 1e3:.0f} ms "
        f"({report.aggregate_fps:.1f} fps), "
        f"{report.inference_frames} I-frames in {report.inference_batches} batches "
        f"(mean batch {report.mean_batch_size:.2f})"
    )
    print(
        "Takeaway: the scheduler keeps every stream advancing (compare queue"
        " waits) while grouping CNN inferences into accelerator-friendly"
        " batches; each stream's adaptive window settles independently."
    )


if __name__ == "__main__":
    main()
