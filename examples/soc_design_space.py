"""SoC-level design-space exploration with the analytical energy model.

Architects use this kind of sweep before committing to RTL: how does the
energy split move as the extrapolation window grows?  What does hosting the
extrapolation on the CPU cost?  How sensitive is the result to the DRAM
energy per byte or to a beefier accelerator?  Everything here runs on the
analytical SoC model, so the whole exploration takes milliseconds.

Run with:  python examples/soc_design_space.py
"""

from __future__ import annotations


from repro.harness.reporting import format_table
from repro.nn.models import build_yolo_v2
from repro.soc import SoCConfig, VisionSoC
from repro.soc.config import DRAMConfig, NNXConfig


def sweep_extrapolation_window() -> None:
    soc = VisionSoC()
    yolo = build_yolo_v2()
    baseline = soc.evaluate_constant_ew(yolo, 1, rois_per_frame=6.0)
    rows = []
    for window in (1, 2, 4, 8, 16, 32):
        on_ip = soc.evaluate_constant_ew(yolo, window, rois_per_frame=6.0)
        on_cpu = soc.evaluate_constant_ew(
            yolo, window, rois_per_frame=6.0, extrapolation_on_cpu=True
        )
        rows.append(
            [
                f"EW-{window}",
                round(on_ip.fps, 1),
                round(on_ip.normalized_to(baseline), 3),
                round(on_cpu.normalized_to(baseline), 3),
                round(on_ip.frontend_energy_per_frame_j * 1e3, 2),
                round(on_ip.memory_energy_per_frame_j * 1e3, 2),
                round(on_ip.backend_energy_per_frame_j * 1e3, 2),
            ]
        )
    print("Extrapolation-window sweep (YOLOv2 detection, 6 ROIs/frame):")
    print(
        format_table(
            [
                "config",
                "FPS",
                "norm. energy (MC IP)",
                "norm. energy (CPU)",
                "frontend mJ",
                "memory mJ",
                "backend mJ",
            ],
            rows,
        )
    )


def sweep_accelerator_size() -> None:
    yolo = build_yolo_v2()
    rows = []
    for dimension in (16, 24, 32, 48):
        scale = (dimension / 24) ** 2
        nnx = NNXConfig(
            array_rows=dimension,
            array_cols=dimension,
            active_power_w=0.651 * scale,
            area_mm2=1.58 * scale,
        )
        soc = VisionSoC(SoCConfig(nnx=nnx))
        baseline = soc.evaluate_constant_ew(yolo, 1, rois_per_frame=6.0)
        ew4 = soc.evaluate_constant_ew(yolo, 4, rois_per_frame=6.0)
        rows.append(
            [
                f"{dimension}x{dimension}",
                round(nnx.peak_tops, 2),
                round(baseline.fps, 1),
                round(ew4.fps, 1),
                round(ew4.energy_saving_vs(baseline), 2),
            ]
        )
    print()
    print("Accelerator sizing (energy saving of EW-4 vs inference-every-frame):")
    print(
        format_table(
            ["MAC array", "peak TOPS", "baseline FPS", "EW-4 FPS", "EW-4 energy saving"], rows
        )
    )


def sweep_dram_energy() -> None:
    yolo = build_yolo_v2()
    rows = []
    for energy_per_byte in (20.0, 45.0, 90.0):
        soc = VisionSoC(SoCConfig(dram=DRAMConfig(energy_per_byte_pj=energy_per_byte)))
        baseline = soc.evaluate_constant_ew(yolo, 1, rois_per_frame=6.0)
        ew4 = soc.evaluate_constant_ew(yolo, 4, rois_per_frame=6.0)
        rows.append(
            [
                f"{energy_per_byte:.0f} pJ/B",
                round(baseline.memory_energy_per_frame_j * 1e3, 2),
                round(ew4.memory_energy_per_frame_j * 1e3, 2),
                round(ew4.energy_saving_vs(baseline), 2),
            ]
        )
    print()
    print("DRAM energy-per-byte sensitivity:")
    print(
        format_table(
            ["DRAM energy", "baseline memory mJ/frame", "EW-4 memory mJ/frame", "EW-4 saving"],
            rows,
        )
    )


def main() -> None:
    sweep_extrapolation_window()
    sweep_accelerator_size()
    sweep_dram_energy()


if __name__ == "__main__":
    main()
