"""The vectorized motion-estimation engine vs the scalar reference oracle.

Runs ES and TSS on a synthetic 720p frame pair, shows that the vectorized
three-step search is bit-identical to the per-macroblock scalar loops it
replaced, and prints the throughput gap.

Run with:  PYTHONPATH=src python examples/motion_engine_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.harness.perf import synthetic_luma_sequence
from repro.motion import BlockMatcher, BlockMatchingConfig, SearchStrategy, scalar_estimate


def main() -> None:
    frames = synthetic_luma_sequence(720, 1280, 3, seed=42)
    current, previous = frames[2], frames[1]

    matcher = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP))
    start = time.perf_counter()
    field = matcher.estimate(current, previous)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    oracle = scalar_estimate(current, previous)
    scalar_s = time.perf_counter() - start

    identical = np.array_equal(field.vectors, oracle.vectors) and np.array_equal(
        field.sad, oracle.sad
    )
    print(f"720p three-step search over {field.grid.num_blocks} macroblocks")
    print(f"  vectorized: {vectorized_s * 1e3:7.1f} ms  ({1 / vectorized_s:5.1f} fps)")
    print(f"  scalar:     {scalar_s * 1e3:7.1f} ms  ({1 / scalar_s:5.1f} fps)")
    print(f"  speedup:    {scalar_s / vectorized_s:7.1f} x")
    print(f"  bit-identical to the scalar oracle: {identical}")
    print(f"  mean motion: {field.mean_motion()}, ops/frame: {matcher.last_operation_count:,}")

    es = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.EXHAUSTIVE))
    start = time.perf_counter()
    es_field = es.estimate(current, previous)
    print(f"exhaustive search: {(time.perf_counter() - start) * 1e3:.1f} ms, "
          f"total SAD {es_field.sad.sum():.0f} <= TSS {field.sad.sum():.0f}")


if __name__ == "__main__":
    main()
