"""Quickstart: motion-extrapolated tracking in ~30 lines.

Generates a small OTB-like dataset, runs the Euphrates pipeline with an
extrapolation window of 2 (one CNN inference every other frame), and compares
accuracy and SoC energy against the run-the-CNN-every-frame baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from _example_utils import bounded_frames, bounded_sequences

from repro import PipelineSpec, VisionSoC, tracking_backend_for
from repro.eval import success_rate
from repro.nn.models import build_mdnet
from repro.video import build_otb_like_dataset


def main() -> None:
    # A small synthetic stand-in for OTB-100 (see DESIGN.md, "Substitutions").
    dataset = build_otb_like_dataset(
        num_sequences=bounded_sequences(6), frames_per_sequence=bounded_frames(40)
    )
    soc = VisionSoC()
    mdnet = build_mdnet()

    print("config     success@0.5   inference rate   energy/frame   saving")
    baseline_energy = None
    for label, window in (("baseline", 1), ("EW-2", 2), ("EW-4", 4), ("adaptive", "adaptive")):
        pipeline = PipelineSpec(extrapolation_window=window).build(tracking_backend_for("mdnet"))
        results = pipeline.run_dataset(dataset)

        accuracy = success_rate(results, dataset, iou_threshold=0.5)
        breakdown = soc.evaluate_results(mdnet, results, label=label)
        if baseline_energy is None:
            baseline_energy = breakdown.energy_per_frame_j
        saving = 1.0 - breakdown.energy_per_frame_j / baseline_energy

        print(
            f"{label:<10} {accuracy:>10.3f} {breakdown.inference_rate:>15.2f} "
            f"{breakdown.energy_per_frame_j * 1e3:>12.2f} mJ {saving:>8.1%}"
        )


if __name__ == "__main__":
    main()
