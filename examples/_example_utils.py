"""Shared helpers for the example scripts.

The examples-smoke CI job runs every example with
``EUPHRATES_EXAMPLE_FRAMES`` set to a small number; :func:`bounded_frames`
caps the per-sequence frame counts accordingly so API regressions surface in
seconds without the full demo workloads.
"""

from __future__ import annotations

import os


def bounded_frames(default: int, minimum: int = 8) -> int:
    """``default`` frames, capped by the ``EUPHRATES_EXAMPLE_FRAMES`` env var.

    The cap never drops below ``minimum`` so every demo still exercises a
    few full extrapolation windows.
    """
    cap = os.environ.get("EUPHRATES_EXAMPLE_FRAMES")
    if not cap:
        return default
    return max(minimum, min(default, int(cap)))


def bounded_sequences(default: int, minimum: int = 2) -> int:
    """Sequence-count analogue of :func:`bounded_frames` (same env var)."""
    cap = os.environ.get("EUPHRATES_EXAMPLE_FRAMES")
    if not cap:
        return default
    return max(minimum, min(default, int(cap)))
