"""ADAS-style continuous object detection (the paper's Sec. 6.1 scenario).

An advanced driver-assistance system must detect vehicles and pedestrians on
every frame of a 60 FPS camera, but a full YOLOv2 inference takes ~3x longer
than a frame period on a mobile accelerator.  This example shows how
Euphrates closes the gap: it sweeps the extrapolation window, reporting
detection accuracy, achieved frame rate, and the SoC energy breakdown, and
compares against the conventional alternative of truncating the network
(Tiny YOLO).

Run with:  python examples/adas_object_detection.py
"""

from __future__ import annotations

from _example_utils import bounded_frames, bounded_sequences

from repro import PipelineSpec, VisionSoC, detection_backend_for
from repro.eval import average_precision
from repro.harness.reporting import format_table
from repro.nn.models import build_tiny_yolo, build_yolo_v2
from repro.video import build_detection_dataset


def main() -> None:
    # Multi-object street-scene-like clips: ~6 objects per frame.
    dataset = build_detection_dataset(
        num_sequences=bounded_sequences(3), frames_per_sequence=bounded_frames(32)
    )
    soc = VisionSoC()
    yolo = build_yolo_v2()
    tiny = build_tiny_yolo()

    rows = []
    baseline = None
    configurations = [
        ("YOLOv2 (baseline)", "yolov2", 1),
        ("Euphrates EW-2", "yolov2", 2),
        ("Euphrates EW-4", "yolov2", 4),
        ("Euphrates EW-8", "yolov2", 8),
        ("Tiny YOLO", "tinyyolo", 1),
    ]
    for label, backend_name, window in configurations:
        pipeline = PipelineSpec(extrapolation_window=window).build(
            detection_backend_for(backend_name, seed=1)
        )
        results = pipeline.run_dataset(dataset)
        accuracy = average_precision(results, dataset, iou_threshold=0.5)

        network = tiny if backend_name == "tinyyolo" else yolo
        breakdown = soc.evaluate_results(network, results, label=label)
        if baseline is None:
            baseline = breakdown

        rows.append(
            [
                label,
                round(accuracy, 3),
                round(breakdown.fps, 1),
                round(breakdown.normalized_to(baseline), 2),
                round(breakdown.frontend_energy_per_frame_j * 1e3, 2),
                round(breakdown.memory_energy_per_frame_j * 1e3, 2),
                round(breakdown.backend_energy_per_frame_j * 1e3, 2),
            ]
        )

    print(
        format_table(
            [
                "configuration",
                "AP@0.5",
                "FPS",
                "norm. energy",
                "frontend mJ/frame",
                "memory mJ/frame",
                "backend mJ/frame",
            ],
            rows,
        )
    )
    print()
    print(
        "Takeaway: extrapolation (EW-2/4) reaches real-time frame rates with a"
        " fraction of the energy while staying close to YOLOv2's accuracy,"
        " whereas truncating the network (Tiny YOLO) sacrifices far more"
        " accuracy for a smaller saving."
    )


if __name__ == "__main__":
    main()
