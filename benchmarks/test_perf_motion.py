"""Perf microbenchmark: vectorized motion estimation vs the scalar oracle.

Marked ``perf`` and excluded from the default pytest run (see ``pytest.ini``);
run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_motion.py -m perf -q

The committed ``BENCH_motion.json`` (written by ``run_motion_bench.py``)
records the same numbers so the trajectory is visible in the repo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.perf import benchmark_motion_estimation, synthetic_luma_sequence
from repro.motion.block_matching import BlockMatcher, BlockMatchingConfig
from repro.motion.reference import scalar_estimate

pytestmark = pytest.mark.perf


def test_vectorized_tss_at_least_10x_scalar_at_720p():
    payload = benchmark_motion_estimation(
        resolutions={"720p": (720, 1280)}, num_frames=4
    )
    entry = payload["results"][0]
    assert entry["vectorized_fps"] > entry["scalar_fps"]
    assert entry["speedup"] >= 10.0, f"only {entry['speedup']:.1f}x"


def test_vectorized_matches_oracle_on_bench_content():
    frames = synthetic_luma_sequence(720, 1280, 3, seed=3)
    matcher = BlockMatcher(BlockMatchingConfig())
    field = matcher.estimate(frames[2], frames[1])
    oracle = scalar_estimate(frames[2], frames[1])
    assert np.array_equal(field.vectors, oracle.vectors)
    assert np.array_equal(field.sad, oracle.sad)


def test_1080p_reaches_real_time_budget():
    """The north star is hardware-speed operation; track 1080p throughput."""
    payload = benchmark_motion_estimation(
        resolutions={"1080p": (1080, 1920)}, num_frames=3, include_scalar=False
    )
    entry = payload["results"][0]
    # Loose floor so CI noise cannot flake this; the JSON records the trend.
    assert entry["vectorized_fps"] > 2.0
