"""Perf microbenchmark: vectorized motion estimation vs the scalar oracle.

Marked ``perf`` and excluded from the default pytest run (see ``pytest.ini``);
run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_motion.py -m perf -q

The committed ``BENCH_motion.json`` trajectory (appended to by
``run_motion_bench.py``, enforced by the CI ``perf-guard`` job) records the
same numbers so the trend is visible in the repo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.perf import benchmark_motion_estimation, synthetic_luma_sequence
from repro.motion.block_matching import BlockMatcher, BlockMatchingConfig
from repro.motion.reference import scalar_estimate

pytestmark = pytest.mark.perf


def test_vectorized_tss_at_least_10x_scalar_at_720p():
    payload = benchmark_motion_estimation(
        resolutions={"720p": (720, 1280)},
        num_frames=4,
        include_exhaustive=False,
        include_fixed_point=False,
    )
    entry = payload["results"][0]
    assert entry["vectorized_fps"] > entry["scalar_fps"]
    assert entry["speedup"] >= 10.0, f"only {entry['speedup']:.1f}x"


def test_pruned_es_at_least_2x_full_es_at_720p():
    """The search-policy acceptance floor: pruning must pay for itself."""
    payload = benchmark_motion_estimation(
        resolutions={"720p": (720, 1280)},
        num_frames=4,
        include_scalar=False,
        include_fixed_point=False,
    )
    entry = payload["results"][0]
    assert entry["es_pruned_speedup_vs_full"] >= 2.0, (
        f"only {entry['es_pruned_speedup_vs_full']:.1f}x"
    )
    # Pruning skips most of the window on matchable content.
    assert entry["es_pruned_evaluated_fraction"] < 0.5


def test_fixed_point_frames_stay_near_integer_speed():
    """Q8.4 float frames must ride the integer kernel, not the float gather.

    The old float64 gather path ran at ~1x the scalar oracle (~8-13x slower
    than the uint8 path); the fixed-point path pays only the wider integer
    dtype, so a loose 4x bound cleanly separates the two regimes.
    """
    payload = benchmark_motion_estimation(
        resolutions={"720p": (720, 1280)},
        num_frames=4,
        include_scalar=False,
        include_exhaustive=False,
    )
    entry = payload["results"][0]
    assert entry["fixed_point_kernel_exact"]
    assert entry["fixed_point_vs_uint8"] < 4.0, (
        f"Q8.4 frames {entry['fixed_point_vs_uint8']:.1f}x slower than uint8"
    )


def test_vectorized_matches_oracle_on_bench_content():
    frames = synthetic_luma_sequence(720, 1280, 3, seed=3)
    matcher = BlockMatcher(BlockMatchingConfig())
    field = matcher.estimate(frames[2], frames[1])
    oracle = scalar_estimate(frames[2], frames[1])
    assert np.array_equal(field.vectors, oracle.vectors)
    assert np.array_equal(field.sad, oracle.sad)


def test_1080p_reaches_real_time_budget():
    """The north star is hardware-speed operation; track 1080p throughput."""
    payload = benchmark_motion_estimation(
        resolutions={"1080p": (1080, 1920)},
        num_frames=3,
        include_scalar=False,
        include_exhaustive=False,
        include_fixed_point=False,
    )
    entry = payload["results"][0]
    # Loose floor so CI noise cannot flake this; the JSON records the trend.
    assert entry["vectorized_fps"] > 2.0
