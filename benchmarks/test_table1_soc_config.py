"""Table 1: the modeled vision SoC configuration."""

from __future__ import annotations

from repro.harness import format_table, table1_soc_configuration
from repro.soc import SoCConfig

from conftest import run_once


def test_table1_soc_configuration(benchmark):
    rows = run_once(benchmark, table1_soc_configuration)
    print()
    print(format_table(["Component", "Specification"], rows))

    components = dict(rows)
    assert "24x24 systolic MAC array" in components["NN Accelerator (NNX)"]
    assert "1.5 MB" in components["NN Accelerator (NNX)"]
    assert "4-wide SIMD" in components["Motion Controller (MC)"]
    assert "8 KB" in components["Motion Controller (MC)"]
    assert "LPDDR3" in components["DRAM"]
    assert "25.6 GB/s" in components["DRAM"]

    config = SoCConfig()
    # Derived headline numbers from Sec. 5.1.
    assert abs(config.nnx.peak_tops - 1.152) < 1e-6
    assert abs(config.nnx.tops_per_watt - 1.77) < 0.05
    assert abs(config.motion_controller.active_power_w - 0.0022) < 1e-9
