"""Fig. 9a: detection average precision vs IoU threshold.

Runs the full Euphrates pipeline (ISP block matching + extrapolation +
calibrated YOLOv2 / Tiny YOLO backends) over the in-house-like detection
dataset and reproduces the figure's qualitative shape: EW-2/EW-4 track the
YOLOv2 baseline closely, accuracy degrades slowly as EW grows, and Tiny YOLO
is less accurate than even EW-32.
"""

from __future__ import annotations

from repro.harness import figure9a_detection_precision, format_table

from conftest import EW_SWEEP, run_once


def test_fig9a_detection_precision(benchmark, detection_dataset, sweep_runner):
    result = run_once(
        benchmark,
        figure9a_detection_precision,
        dataset=detection_dataset,
        ew_values=EW_SWEEP,
        seed=1,
        runner=sweep_runner,
    )
    print()
    print(format_table(result.headers(), result.rows()))

    baseline = result.at("YOLOv2", 0.5)
    ew2 = result.at("EW-2", 0.5)
    ew4 = result.at("EW-4", 0.5)
    ew32 = result.at("EW-32", 0.5)
    tiny = result.at("TinyYOLO", 0.5)

    # Paper: EW-2 loses only ~0.6% AP at IoU 0.5; EW-4 stays close too.
    assert baseline - ew2 < 0.05
    assert baseline - ew4 < 0.10
    # Accuracy declines as the window grows.
    assert ew2 >= ew32 - 0.02
    # Tiny YOLO is less accurate than EW-32 despite running a CNN every frame.
    assert tiny < ew32
    # The AP-vs-IoU curves are non-increasing in the threshold.
    for label in ("YOLOv2", "EW-2", "EW-32", "TinyYOLO"):
        curve = result.curves[label]
        thresholds = sorted(curve)
        values = [curve[t] for t in thresholds]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
