#!/usr/bin/env python
"""Append an end-to-end frame-path measurement to ``BENCH_motion.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/run_pipeline_bench.py               # full preset
    PYTHONPATH=src python benchmarks/run_pipeline_bench.py --preset ci --guard
    PYTHONPATH=src python benchmarks/run_pipeline_bench.py --kernel-backend numba

Where ``run_motion_bench.py`` times the SAD kernels in isolation, this bench
times the *whole* per-frame session path — ISP stages, motion search, denoise
blend, extrapolation, backend inference — by feeding synthetic camera clips
through real :class:`~repro.core.session.EuphratesSession` objects at
720p/1080p under two schedules (``i_heavy`` EW=1, ``e_heavy`` EW=8).  Each
run **appends** a dated ``benchmark: "pipeline"`` entry recording:

* end-to-end fps and seconds/frame per (resolution, schedule), with the
  steady-state E-frame and I-frame costs split out;
* the per-stage wall-clock breakdown from the ``FrameTelemetry`` stage
  timings (same data the ``profile`` subcommand renders);
* the optimized denoise-blend speedup over the retained scalar reference
  (machine-robust same-run ratio, like the motion bench's scalar/vectorized
  TSS speedup);
* the peak heap churn of one steady-state E-frame ``submit()`` measured
  under ``tracemalloc`` (the allocation-free-steady-state guard).

``--guard`` enforces the ``min_pipeline_blend_speedup_vs_reference_720p``
floor and the ``max_pipeline_alloc_mb_per_eframe_720p`` ceiling stored in the
trajectory file.  Wall-clock floors are same-run ratios on purpose: absolute
fps is machine-dependent, but "vectorized blend beats the scalar loop by
>= Nx" and "an E-frame allocates under M MB" hold on any box.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from run_motion_bench import load_trajectory  # noqa: E402

from repro.core.spec import PipelineSpec  # noqa: E402
from repro.harness.perf import RESOLUTIONS  # noqa: E402
from repro.harness.pipeline_perf import (  # noqa: E402
    SCHEDULES,
    benchmark_pipeline,
    make_sequence,
)

#: Floors seeded into the trajectory when absent (the stored values are
#: authoritative afterwards).  Calibrated in this file's first post-
#: optimization entry; see docs/benchmarking.md for the recalibration rules.
PIPELINE_FLOORS = {
    # Vectorized/compiled denoise blend vs the retained scalar reference on
    # identical inputs (same-run ratio of the steady-state call: warmed
    # scratch pool, preallocated out, raw uint8 frame; measured ~9x on the
    # dev box — the synthetic clips steer the kernel down its *dense* path,
    # the slowest of the three, so this is the conservative ratio).
    "min_pipeline_blend_speedup_vs_reference_720p": 6.0,
    # Peak tracemalloc churn of one steady-state 720p E-frame submit().  The
    # pre-optimization path allocated ~50 MB/frame; the scratch-buffer steady
    # state measures ~8 MB (the numpy gather temp), so 16 MB catches any
    # reintroduced per-frame allocation of even one extra frame-sized array.
    "max_pipeline_alloc_mb_per_eframe_720p": 16.0,
}

#: Presets: name -> (resolution subset or None for all, frames per run).
PRESETS = {
    "full": (None, 18),
    # CI preset: 720p only, enough frames for a full EW=8 cycle plus
    # steady-state samples after the two warm-up frames.
    "ci": ({"720p": RESOLUTIONS["720p"]}, 12),
}


def measure_blend_speedup(spec: PipelineSpec, height: int, width: int, seed: int):
    """Same-run speedup of the dispatched blend over the scalar reference.

    Measures the *steady-state* call exactly as a session pays it: the raw
    uint8 frame handed straight to the kernel, a preallocated output buffer
    and the stage's warmed gather-staging pool — the allocating first-call
    path would understate the speedup the session actually sees.  Returns
    ``None`` when the oracle layer is unavailable (pre-refactor checkouts),
    so the bench still produces baseline e2e entries there.
    """
    try:
        from repro.isp.denoise import TemporalDenoiseConfig, TemporalDenoiseStage
        from repro.isp.reference import reference_motion_compensated_blend
    except ImportError:
        return None

    sequence = make_sequence(height, width, 4, seed=seed)
    frames = [frame for _, frame in sequence.iter_frames()]
    stage = TemporalDenoiseStage(
        TemporalDenoiseConfig(block_matching=spec.block_matching_config()),
        reuse_output_buffers=True,
    )
    stage.process(frames[0])
    stage.process(frames[1])
    current = np.asarray(frames[2])
    current_f64 = np.asarray(current, dtype=np.float64)
    previous = stage._previous_denoised.copy()
    field = stage._matcher.estimate(
        stage._current_matching_reference(current, current_f64),
        stage._previous_reference,
    )

    def best_of(callable_, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    config = stage.config
    out = np.empty(current.shape, dtype=np.float64)

    def optimized():
        return stage._motion_compensated_blend(current, previous, field, out=out)

    optimized()  # warm the gather-staging pool, like the session's steady state
    optimized_s = best_of(optimized)
    reference_s = best_of(
        lambda: reference_motion_compensated_blend(
            current_f64,
            previous,
            field,
            blend_strength=config.blend_strength,
            max_normalised_sad=config.max_normalised_sad,
        )
    )
    fast = optimized()
    slow = reference_motion_compensated_blend(
        current_f64,
        previous,
        field,
        blend_strength=config.blend_strength,
        max_normalised_sad=config.max_normalised_sad,
    )
    if not np.array_equal(fast, slow):
        raise AssertionError("dispatched blend diverged from the scalar reference")
    return {
        "optimized_s": optimized_s,
        "reference_s": reference_s,
        "speedup": reference_s / optimized_s if optimized_s > 0 else 0.0,
    }


def check_floors(entry: dict, floors: dict) -> list:
    """Return floor-violation strings for ``entry`` (empty = healthy)."""
    violations = []
    by_resolution = {result["resolution"]: result for result in entry["results"]}

    floor = floors.get("min_pipeline_blend_speedup_vs_reference_720p")
    if floor is not None and "720p" in by_resolution:
        blend = by_resolution["720p"].get("blend_vs_reference")
        if blend is None:
            violations.append(
                "720p entry has no blend_vs_reference measurement "
                "(oracle layer missing?)"
            )
        elif blend["speedup"] < floor:
            violations.append(
                f"720p blend speedup vs reference {blend['speedup']:.2f}x "
                f"< floor {floor}x"
            )

    ceiling = floors.get("max_pipeline_alloc_mb_per_eframe_720p")
    if ceiling is not None and "720p" in by_resolution:
        alloc = by_resolution["720p"].get("e_frame_alloc_mb")
        if alloc is None:
            violations.append("720p entry has no e_frame_alloc_mb measurement")
        elif alloc > ceiling:
            violations.append(
                f"720p E-frame alloc {alloc:.1f} MB > ceiling {ceiling} MB"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="full")
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kernel-backend",
        choices=("numpy", "numba"),
        default="numpy",
        help="kernel backend the sessions request (graceful numpy fallback)",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_motion.json",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 when a stored pipeline floor is violated",
    )
    args = parser.parse_args()

    resolutions, preset_frames = PRESETS[args.preset]
    num_frames = args.frames or preset_frames
    spec = PipelineSpec(kernel_backend=args.kernel_backend)

    entry = benchmark_pipeline(
        spec,
        resolutions=resolutions,
        num_frames=num_frames,
        seed=args.seed,
    )
    for result in entry["results"]:
        blend = measure_blend_speedup(
            spec, result["height"], result["width"], args.seed
        )
        if blend is not None:
            result["blend_vs_reference"] = blend

    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    entry["preset"] = args.preset
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()

    trajectory = load_trajectory(args.trajectory)
    for key, value in PIPELINE_FLOORS.items():
        trajectory["floors"].setdefault(key, value)
    trajectory["entries"].append(entry)
    args.trajectory.write_text(json.dumps(trajectory, indent=2) + "\n")

    for result in entry["results"]:
        for schedule in SCHEDULES:
            timing = result[schedule]
            print(
                f"{result['resolution']} {schedule} (EW={timing['window']}): "
                f"{timing['fps']:.2f} fps overall, "
                f"E-frame {timing['e_s_per_frame'] * 1e3:.1f} ms "
                f"({timing['e_fps']:.2f} fps), "
                f"I-frame {timing['i_s_per_frame'] * 1e3:.1f} ms"
            )
        blend = result.get("blend_vs_reference")
        if blend is not None:
            print(
                f"{result['resolution']} blend vs reference: "
                f"{blend['speedup']:.1f}x"
            )
        alloc = result.get("e_frame_alloc_mb")
        if alloc is not None:
            print(f"{result['resolution']} E-frame alloc: {alloc:.1f} MB")

    violations = check_floors(entry, trajectory["floors"])
    for violation in violations:
        print(f"FLOOR VIOLATION: {violation}")
    if args.guard and violations:
        return 1
    if violations:
        print("(not guarding: run with --guard to fail on violations)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
