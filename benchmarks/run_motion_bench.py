#!/usr/bin/env python
"""Append a motion-estimation perf measurement to ``BENCH_motion.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/run_motion_bench.py              # full preset
    PYTHONPATH=src python benchmarks/run_motion_bench.py --preset ci --guard

Each run measures fps / per-frame latency / analytical op counts for the
vectorized three-step search (against the scalar oracle it must beat), the
exhaustive search under every candidate-scan policy
(full/spiral/pruned/histogram), and the fixed-point float-frame path, then
**appends** a dated entry to the trajectory file — the perf history
accumulates across commits instead of being overwritten.  A legacy
single-payload ``BENCH_motion.json`` is migrated into the first trajectory
entry automatically.

``--kernel-backend numba`` measures the compiled SAD backend; the entry then
also times the numpy-backend pruned ES at each resolution and records the
``es_pruned_speedup_vs_numpy`` ratio the accel floors guard.  The entry
always records both the requested and the *active* backend (numba degrades
to numpy when Numba is absent), so the trajectory never lies about what ran.

``--guard`` enforces the perf floors stored in the file (the CI
``perf-guard`` and ``kernels-accel`` jobs run this): the process exits
non-zero when the fresh measurement's vectorized/scalar TSS speedup or
pruned-vs-full ES speedup drops below its floor — or, under
``--kernel-backend numba``, when the backend failed to activate or its
pruned-ES speedup over numpy missed the accel floor.

Commit the refreshed JSON whenever the motion hot path changes.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.harness.perf import (
    RESOLUTIONS,
    _time_per_frame,
    benchmark_motion_estimation,
    synthetic_luma_sequence,
)
from repro.motion.kernels import KERNEL_BACKENDS

#: Floors seeded into a fresh trajectory file.  The committed
#: ``BENCH_motion.json`` carries the authoritative values; edit them there
#: (with justification) rather than here.
DEFAULT_FLOORS = {
    "min_tss_speedup_720p": 8.0,
    "min_es_pruned_speedup_vs_full_720p": 2.5,
    # The histogram policy's global candidate ranking prunes earlier than
    # the fixed spiral on panning scenes (the bench's synthetic sequence
    # pans): measured ~5.5x full ES at 720p, floored with headroom.
    "min_es_histogram_speedup_vs_full_720p": 3.5,
    # Ceiling on the modeled per-stream energy of the multi-stream bench
    # (run_stream_bench.py --guard).  The modeled energy is deterministic
    # for a given spec/workload, so a breach means a real regression in the
    # scheduler (I-frame batching stopped amortising weight traffic — the
    # ci preset prices 13.99 mJ/frame batched vs 14.24 unbatched) or in the
    # SoC cost model itself — not measurement noise.
    "max_stream_energy_per_frame_mj": 14.1,
    # Accel floors: checked only on entries measured with
    # --kernel-backend numba (and each only at resolutions the preset
    # actually measured).  The compiled backend must genuinely activate and
    # beat the numpy pruned ES by this factor, else the guard fails.
    "min_numba_es_pruned_speedup_vs_numpy_720p": 2.0,
    "min_numba_es_pruned_speedup_vs_numpy_1080p": 2.0,
}

#: Presets: name -> (resolutions, frames, include_scalar).
PRESETS = {
    # The full trajectory measurement (both resolutions).
    "full": (None, 4, True),
    # Small CI preset: 720p only, fewest frames that still time a pair per
    # measurement — enough for the guarded ratios, cheap enough for CI.
    "ci": ({"720p": RESOLUTIONS["720p"]}, 3, True),
}


def load_trajectory(path: Path) -> dict:
    """Load (or initialise) the trajectory document, migrating legacy files."""
    if not path.exists():
        return {"schema": 2, "floors": dict(DEFAULT_FLOORS), "entries": []}
    document = json.loads(path.read_text())
    if "entries" in document:
        document.setdefault("floors", dict(DEFAULT_FLOORS))
        return document
    # Legacy format: the whole file was one benchmark payload.
    return {"schema": 2, "floors": dict(DEFAULT_FLOORS), "entries": [document]}


def check_floors(entry: dict, floors: dict) -> list:
    """Return human-readable violations of the stored perf floors.

    The base TSS/pruned floors apply to every guarded run.  The accel
    (``min_numba_*``) floors apply only to entries measured with
    ``--kernel-backend numba``, and each only at resolutions the preset
    measured; on such entries the backend must also have actually activated
    (a silent degrade to numpy would otherwise green-light the guard while
    measuring the wrong thing).
    """
    measured = {
        result["resolution"]: result for result in entry.get("results", [])
    }
    violations = []
    checks = [
        ("min_tss_speedup_720p", "720p", "speedup"),
        ("min_es_pruned_speedup_vs_full_720p", "720p", "es_pruned_speedup_vs_full"),
        (
            "min_es_histogram_speedup_vs_full_720p",
            "720p",
            "es_histogram_speedup_vs_full",
        ),
    ]
    for floor_key, resolution, metric in checks:
        floor = floors.get(floor_key)
        if floor is None:
            continue
        result = measured.get(resolution)
        if result is None or metric not in result:
            violations.append(
                f"{floor_key}: metric '{metric}' at {resolution} was not measured "
                f"(run without --skip-scalar / --skip-exhaustive)"
            )
            continue
        value = result[metric]
        if value < floor:
            violations.append(
                f"{floor_key}: measured {value:.2f}x < floor {floor:.2f}x"
            )

    if entry.get("kernel_backend") == "numba":
        if entry.get("kernel_backend_active") != "numba":
            violations.append(
                "kernel_backend: numba requested but inactive (is the "
                "[accel] extra installed?) — the guarded run measured numpy"
            )
        for resolution in ("720p", "1080p"):
            floor = floors.get(f"min_numba_es_pruned_speedup_vs_numpy_{resolution}")
            result = measured.get(resolution)
            if floor is None or result is None:
                continue
            value = result.get("es_pruned_speedup_vs_numpy")
            if value is None:
                violations.append(
                    f"min_numba_es_pruned_speedup_vs_numpy_{resolution}: "
                    "metric 'es_pruned_speedup_vs_numpy' was not measured"
                )
            elif value < floor:
                violations.append(
                    f"min_numba_es_pruned_speedup_vs_numpy_{resolution}: "
                    f"measured {value:.2f}x < floor {floor:.2f}x"
                )
    return violations


def add_numpy_pruned_baseline(entry: dict, num_frames: int, seed: int = 0) -> None:
    """Time the numpy-backend pruned ES and attach the backend speedup.

    Mutates each resolution result in ``entry`` with
    ``es_pruned_numpy_s_per_frame`` and ``es_pruned_speedup_vs_numpy`` so a
    ``--kernel-backend numba`` entry carries its own baseline — the ratio
    the accel floors guard, self-contained in one trajectory entry.
    """
    from repro.motion.block_matching import (
        BlockMatcher,
        BlockMatchingConfig,
        SearchPolicy,
        SearchStrategy,
    )

    matcher = BlockMatcher(
        BlockMatchingConfig(
            block_size=entry["block_size"],
            search_range=entry["search_range"],
            strategy=SearchStrategy.EXHAUSTIVE,
            search_policy=SearchPolicy.PRUNED,
            kernel_backend="numpy",
        )
    )
    for result in entry.get("results", []):
        if "es_pruned_s_per_frame" not in result:
            continue
        frames = synthetic_luma_sequence(
            result["height"], result["width"], num_frames, seed=seed
        )
        matcher.estimate(frames[1], frames[0])  # warm-up
        numpy_s = _time_per_frame(matcher.estimate, frames)
        result["es_pruned_numpy_s_per_frame"] = numpy_s
        result["es_pruned_speedup_vs_numpy"] = (
            numpy_s / result["es_pruned_s_per_frame"]
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_motion.json",
        help="trajectory JSON to append to (default: repo-root BENCH_motion.json)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="full",
        help="measurement preset: 'full' = 720p+1080p, 'ci' = small 720p-only "
        "preset for the perf-guard job (default: full)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="override frames per synthetic sequence"
    )
    parser.add_argument(
        "--skip-scalar",
        action="store_true",
        help="skip the slow scalar-oracle timing (no speedup column)",
    )
    parser.add_argument(
        "--skip-exhaustive",
        action="store_true",
        help="skip the exhaustive-search policy timings",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=list(KERNEL_BACKENDS),
        default="numpy",
        help="SAD kernel backend to measure; 'numba' also times the numpy "
        "pruned-ES baseline and records the backend speedup (default: numpy)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="fail (exit 1) when the fresh measurement violates the perf "
        "floors stored in the trajectory file",
    )
    args = parser.parse_args()

    resolutions, preset_frames, preset_scalar = PRESETS[args.preset]
    include_scalar = preset_scalar and not args.skip_scalar
    if args.guard and (args.skip_scalar or args.skip_exhaustive):
        parser.error("--guard needs the scalar and exhaustive measurements")

    num_frames = args.frames if args.frames is not None else preset_frames
    entry = benchmark_motion_estimation(
        resolutions=resolutions,
        num_frames=num_frames,
        include_scalar=include_scalar,
        include_exhaustive=not args.skip_exhaustive,
        kernel_backend=args.kernel_backend,
    )
    if args.kernel_backend != "numpy" and not args.skip_exhaustive:
        add_numpy_pruned_baseline(entry, num_frames)
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    entry["preset"] = args.preset
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()

    document = load_trajectory(args.output)
    document["entries"].append(entry)
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended entry {len(document['entries'])} to {args.output}")

    for result in entry["results"]:
        line = f"  {result['resolution']:>6}: TSS {result['vectorized_fps']:.1f} fps"
        if "speedup" in result:
            line += f" ({result['speedup']:.1f}x scalar)"
        if "es_pruned_fps" in result:
            line += (
                f"; ES full {result['es_full_fps']:.1f} -> pruned "
                f"{result['es_pruned_fps']:.1f} fps "
                f"({result['es_pruned_speedup_vs_full']:.1f}x, "
                f"{result['es_pruned_evaluated_fraction']:.1%} candidates)"
            )
        if "es_pruned_speedup_vs_numpy" in result:
            line += (
                f"; {entry['kernel_backend_active']} backend "
                f"{result['es_pruned_speedup_vs_numpy']:.1f}x numpy pruned ES"
            )
        if "fixed_point_fps" in result:
            line += f"; Q8.4 TSS {result['fixed_point_fps']:.1f} fps"
        print(line)

    if args.guard:
        violations = check_floors(entry, document["floors"])
        if violations:
            for violation in violations:
                print(f"PERF FLOOR VIOLATION — {violation}", file=sys.stderr)
            return 1
        print("perf floors OK:", ", ".join(
            f"{key}={value}" for key, value in document["floors"].items()
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
