#!/usr/bin/env python
"""Dump the motion-estimation perf trajectory to ``BENCH_motion.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/run_motion_bench.py

Writes fps / per-frame latency / analytical op counts for the vectorized
three-step search (and the scalar oracle it must beat) on synthetic
720p/1080p sequences.  Commit the refreshed JSON so future PRs can see the
perf trend.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.harness.perf import benchmark_motion_estimation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_motion.json",
        help="where to write the benchmark JSON (default: repo-root BENCH_motion.json)",
    )
    parser.add_argument(
        "--frames", type=int, default=4, help="frames per synthetic sequence"
    )
    parser.add_argument(
        "--skip-scalar",
        action="store_true",
        help="skip the slow scalar-oracle timing (no speedup column)",
    )
    args = parser.parse_args()

    payload = benchmark_motion_estimation(
        num_frames=args.frames, include_scalar=not args.skip_scalar
    )
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    for entry in payload["results"]:
        line = (
            f"  {entry['resolution']:>6}: vectorized {entry['vectorized_fps']:.1f} fps"
        )
        if "speedup" in entry:
            line += (
                f", scalar {entry['scalar_fps']:.2f} fps, "
                f"speedup {entry['speedup']:.1f}x"
            )
        print(line)


if __name__ == "__main__":
    main()
