"""Fig. 10c: per-sequence success rate for EW-2, EW-4 and the adaptive mode.

The paper's observation: the adaptive mode has a more uniform success rate
across scenes than EW-4 (it backs off to small windows on hard scenes), and
behaves similarly to EW-2 overall.
"""

from __future__ import annotations

import numpy as np

from repro.harness import figure10c_per_sequence_success
from repro.harness.reporting import format_table

from conftest import run_once


def test_fig10c_per_sequence_success(benchmark, tracking_dataset, sweep_runner):
    result = run_once(
        benchmark,
        figure10c_per_sequence_success,
        dataset=tracking_dataset,
        configurations=(2, 4, "adaptive"),
        seed=1,
        runner=sweep_runner,
    )
    print()
    print(format_table(result.headers(), result.rows()))

    ew2 = np.array(sorted(result.values["EW-2"].values()))
    ew4 = np.array(sorted(result.values["EW-4"].values()))
    adaptive = np.array(sorted(result.values["EW-A"].values()))

    # Every configuration reports one value per sequence, all within [0, 1].
    num_sequences = len(tracking_dataset)
    for series in (ew2, ew4, adaptive):
        assert len(series) == num_sequences
        assert np.all(series >= 0.0) and np.all(series <= 1.0)

    # The adaptive mode is at least as accurate as EW-4 on the hardest scenes
    # (the low end of the sorted curve) and no worse than EW-4 on average.
    hardest = max(1, num_sequences // 4)
    assert adaptive[:hardest].mean() >= ew4[:hardest].mean() - 0.05
    assert adaptive.mean() >= ew4.mean() - 0.05
    # EW-2 remains the accuracy upper bound among the three.
    assert ew2.mean() >= adaptive.mean() - 0.05
