"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure from the paper.  The datasets
here are scaled-down versions of the paper's benchmarks (the full OTB-100 /
VOT-2014 / 7,264-frame detection sets would take hours in pure Python); the
shapes of the results are what the benches assert, and EXPERIMENTS.md records
the paper-vs-measured comparison for the committed configuration.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import SweepRunner
from repro.video.datasets import build_detection_dataset, build_tracking_dataset


#: EW sweep used by the figure benchmarks (matches the paper's EW-2..EW-32).
EW_SWEEP = (2, 4, 8, 16, 32)


@pytest.fixture(scope="session")
def sweep_runner():
    """One SweepRunner for the whole benchmark session.

    Figures that sweep the same (dataset, backend, window, block-matching)
    point — 10a/10c/12 and 11a/11b — share a single pipeline execution
    instead of recomputing it per test.
    """
    return SweepRunner()


@pytest.fixture(scope="session")
def tracking_dataset():
    """OTB-like + VOT-like tracking pool (scaled-down stand-in for 125 sequences)."""
    return build_tracking_dataset(
        otb_sequences=8, vot_sequences=3, frames_per_sequence=36, seed=100
    )


@pytest.fixture(scope="session")
def small_tracking_dataset():
    """Smaller pool for the expensive sweeps (Fig. 11a/11b)."""
    return build_tracking_dataset(
        otb_sequences=5, vot_sequences=0, frames_per_sequence=30, seed=500
    )


@pytest.fixture(scope="session")
def detection_dataset():
    """In-house-like multi-object detection dataset (~6 objects per frame)."""
    return build_detection_dataset(num_sequences=3, frames_per_sequence=32, seed=7264)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
