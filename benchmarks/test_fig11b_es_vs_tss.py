"""Fig. 11b: exhaustive search vs three-step search accuracy.

The paper's finding: despite ES costing ~9x more arithmetic than TSS, the
tracking success rates of the two block-matching strategies are nearly
identical — so the cheap search is the right choice for the ISP.
"""

from __future__ import annotations

import numpy as np

from repro.harness import figure11b_es_vs_tss
from repro.harness.reporting import format_table
from repro.motion.block_matching import (
    exhaustive_search_ops_per_macroblock,
    three_step_search_ops_per_macroblock,
)

from conftest import run_once


def test_fig11b_es_vs_tss(benchmark, small_tracking_dataset, sweep_runner):
    scatter = run_once(
        benchmark,
        figure11b_es_vs_tss,
        dataset=small_tracking_dataset,
        ew_values=(2, 8, 32),
        thresholds=(0.1, 0.3, 0.5, 0.7, 0.9),
        seed=1,
        runner=sweep_runner,
    )
    rows = []
    for label, points in scatter.items():
        for threshold, es, tss in points:
            rows.append([label, threshold, round(es, 3), round(tss, 3)])
    print()
    print(format_table(["config", "IoU threshold", "ES", "TSS"], rows))

    # The scatter hugs the diagonal: ES and TSS success rates nearly match.
    differences = [abs(es - tss) for points in scatter.values() for _t, es, tss in points]
    assert float(np.mean(differences)) < 0.08
    # At small and moderate windows the two strategies are essentially
    # interchangeable point by point; at EW-32 individual high-IoU points get
    # noisy on a small dataset, so only the average is constrained there.
    for label in ("EW-2", "EW-8"):
        assert max(abs(es - tss) for _t, es, tss in scatter[label]) < 0.15
    ew32_diffs = [abs(es - tss) for _t, es, tss in scatter["EW-32"]]
    assert float(np.mean(ew32_diffs)) < 0.15

    # The compute gap that makes this equivalence worthwhile (~9x at d = 7).
    ratio = exhaustive_search_ops_per_macroblock(16, 7) / three_step_search_ops_per_macroblock(16, 7)
    assert ratio > 8.0
