"""Table 2: benchmark summary — networks, GOPS at 60 FPS, dataset sizes."""

from __future__ import annotations

import pytest

from repro.harness import format_table, table2_workloads
from repro.soc import SoCConfig

from conftest import run_once


def test_table2_workloads(benchmark, detection_dataset, tracking_dataset):
    rows = run_once(benchmark, table2_workloads)
    print()
    print(format_table(["Domain", "Network", "GOPS @60FPS", "Benchmark", "Frames"], rows))

    gops = {row[1]: row[2] for row in rows}
    # Paper Table 2: YOLOv2 3423, Tiny YOLO 675, MDNet 635 GOPS at 60 FPS.
    assert gops["YOLOv2"] == pytest.approx(3423, rel=0.15)
    assert gops["TinyYOLO"] == pytest.approx(675, rel=0.15)
    assert gops["MDNet"] == pytest.approx(635, rel=0.15)

    # Only the baseline accelerator's 1.15 TOPS peak accommodates Tiny YOLO
    # and MDNet at 60 FPS; YOLOv2 exceeds it (the paper's framing).
    peak_gops = SoCConfig().nnx.peak_tops * 1000.0
    assert gops["YOLOv2"] > peak_gops
    assert gops["TinyYOLO"] < peak_gops
    assert gops["MDNet"] < peak_gops

    # The generated datasets follow the paper's structure (multi-object
    # detection clips, single-target tracking sequences).
    assert detection_dataset.sequences[0].average_objects_per_frame() > 3.0
    assert all(len(seq.object_ids) == 1 for seq in tracking_dataset)
