"""Fig. 10b: normalized energy and inference rate for visual tracking.

MDNet already sustains 60 FPS on the modeled accelerator, so Euphrates'
benefit for tracking is purely energy: EW-2 cuts the backend energy roughly
in half (~20-30% at the SoC level), savings saturate at large windows as the
frontend and memory dominate, and the adaptive mode lands near EW-4's energy.
"""

from __future__ import annotations

import pytest

from repro.harness import figure10b_tracking_energy
from repro.harness.reporting import format_table

from conftest import EW_SWEEP, run_once


def test_fig10b_tracking_energy(benchmark):
    result = run_once(
        benchmark,
        figure10b_tracking_energy,
        ew_values=EW_SWEEP,
        num_frames=69_253,
        adaptive_inference_rate=0.28,
    )
    print()
    print(format_table(result.headers(), result.rows()))

    baseline = result.breakdowns["MDNet"]
    ew2 = result.breakdowns["EW-2"]
    ew4 = result.breakdowns["EW-4"]
    ew32 = result.breakdowns["EW-32"]
    adaptive = result.breakdowns["EW-A"]

    # Tracking runs at the camera rate in every configuration.
    for breakdown in result.breakdowns.values():
        assert breakdown.fps == pytest.approx(60.0, rel=0.01)

    # Paper: EW-2 saves ~21% SoC energy (50% of the backend).
    assert 0.15 <= ew2.energy_saving_vs(baseline) <= 0.40
    backend_saving = 1.0 - ew2.backend_energy_per_frame_j / baseline.backend_energy_per_frame_j
    assert 0.4 <= backend_saving <= 0.6
    # Savings grow with EW but saturate (frontend + memory floor).
    assert ew4.energy_saving_vs(baseline) > ew2.energy_saving_vs(baseline)
    assert ew32.energy_saving_vs(baseline) < 0.65
    # Adaptive mode's energy sits near EW-4 (paper: ~31% saving).
    assert adaptive.energy_per_frame_j == pytest.approx(ew4.energy_per_frame_j, rel=0.15)
    # Inference rate annotations match the windows.
    assert ew4.inference_rate == pytest.approx(0.25, abs=0.01)
    assert adaptive.inference_rate == pytest.approx(0.28, abs=0.01)
