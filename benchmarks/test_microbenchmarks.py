"""Micro-benchmarks of the compute kernels (wall-clock, via pytest-benchmark).

These are not paper figures; they characterise the Python implementation
itself: block-matching throughput for ES vs TSS, the cost of one ROI
extrapolation, and one full ISP frame.  Useful for tracking performance
regressions of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extrapolation import MotionExtrapolator
from repro.core.geometry import BoundingBox, MotionVector
from repro.isp.pipeline import ISPPipeline
from repro.motion.block_matching import BlockMatcher, BlockMatchingConfig, SearchStrategy
from repro.motion.motion_field import MacroblockGrid, MotionField


@pytest.fixture(scope="module")
def frame_pair():
    rng = np.random.default_rng(0)
    previous = np.kron(rng.uniform(0, 255, (14, 24)), np.ones((8, 8)))
    current = np.roll(previous, (2, 3), axis=(0, 1))
    return current, previous


def test_block_matching_tss_throughput(benchmark, frame_pair):
    current, previous = frame_pair
    matcher = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.THREE_STEP))
    field = benchmark(matcher.estimate, current, previous)
    assert field.grid.num_blocks > 0


def test_block_matching_es_throughput(benchmark, frame_pair):
    current, previous = frame_pair
    matcher = BlockMatcher(BlockMatchingConfig(strategy=SearchStrategy.EXHAUSTIVE))
    field = benchmark(matcher.estimate, current, previous)
    assert field.grid.num_blocks > 0


def test_roi_extrapolation_throughput(benchmark):
    grid = MacroblockGrid(192, 108, 16)
    field = MotionField.uniform(grid, MotionVector(2.0, 1.0))
    extrapolator = MotionExtrapolator(frame_width=192, frame_height=108)
    roi = BoundingBox(40, 30, 50, 40)
    result = benchmark(extrapolator.extrapolate_roi, roi, field)
    assert result.box.width > 0


def test_isp_luma_frame_throughput(benchmark):
    rng = np.random.default_rng(1)
    frames = [rng.uniform(0, 255, (108, 192)) for _ in range(2)]
    isp = ISPPipeline()
    isp.process_luma(frames[0], 0)

    def process():
        isp.process_luma(frames[1], 1)

    benchmark(process)
    assert isp.frames_processed >= 2
