"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Confidence filtering (Eq. 2/3) on vs off — the filter should never hurt and
  should help on noisy (fast-motion / blur) scenes.
* Sub-ROI deformation handling on vs off — splitting the ROI should help on
  deformable-object scenes.
* The motion-controller IP vs CPU-hosted extrapolation is covered by the
  EW-8@CPU bar of Fig. 9b (see test_fig9b_detection_energy_fps.py).
"""

from __future__ import annotations

import pytest

from repro.core import EuphratesConfig, EuphratesPipeline, tracking_backend_for
from repro.core.extrapolation import ExtrapolationConfig
from repro.core.window import ConstantWindowController
from repro.eval import success_rate
from repro.video.attributes import VisualAttribute
from repro.video.datasets import Dataset, build_otb_like_dataset
from repro.video.synthetic import SequenceConfig, SequenceGenerator

from conftest import run_once


def _run_with_extrapolation_config(dataset, extrapolation: ExtrapolationConfig, window: int = 8):
    pipeline = EuphratesPipeline(
        tracking_backend_for("mdnet", seed=3),
        ConstantWindowController(window),
        EuphratesConfig(extrapolation=extrapolation),
    )
    return pipeline.run_dataset(dataset)


@pytest.fixture(scope="module")
def deformation_dataset():
    """Sequences dominated by deformable objects."""
    sequences = []
    for index in range(4):
        config = SequenceConfig(
            name=f"deform_{index}",
            num_frames=30,
            seed=900 + index,
            attributes=frozenset({VisualAttribute.DEFORMATION}),
        )
        sequences.append(SequenceGenerator(config).generate())
    return Dataset(name="deformation", sequences=sequences)


def test_ablation_confidence_filter(benchmark):
    """The Eq. 2/3 confidence filter should not hurt ordinary tracking."""
    dataset = build_otb_like_dataset(num_sequences=5, frames_per_sequence=30, seed=800)

    def run():
        with_filter = _run_with_extrapolation_config(
            dataset, ExtrapolationConfig(use_confidence_filter=True)
        )
        without_filter = _run_with_extrapolation_config(
            dataset, ExtrapolationConfig(use_confidence_filter=False)
        )
        return (
            success_rate(with_filter, dataset, 0.5),
            success_rate(without_filter, dataset, 0.5),
        )

    with_filter, without_filter = run_once(benchmark, run)
    print(f"\nconfidence filter on: {with_filter:.3f}  off: {without_filter:.3f}")
    assert with_filter >= without_filter - 0.05
    assert with_filter > 0.5


def test_ablation_sub_roi_deformation(benchmark, deformation_dataset):
    """Sub-ROI extrapolation should be at least as good as rigid extrapolation
    on deformable objects (Sec. 3.2, "Handle Deformations")."""

    def run():
        with_sub_rois = _run_with_extrapolation_config(
            deformation_dataset, ExtrapolationConfig(sub_roi_grid=(2, 2))
        )
        rigid = _run_with_extrapolation_config(
            deformation_dataset, ExtrapolationConfig(sub_roi_grid=(1, 1))
        )
        return (
            success_rate(with_sub_rois, deformation_dataset, 0.5),
            success_rate(rigid, deformation_dataset, 0.5),
        )

    with_sub_rois, rigid = run_once(benchmark, run)
    print(f"\nsub-ROI grid (2,2): {with_sub_rois:.3f}  rigid (1,1): {rigid:.3f}")
    assert with_sub_rois >= rigid - 0.05
    assert with_sub_rois > 0.5
