"""Fig. 11a: tracking success rate vs macroblock size (4..128) per EW.

The paper's findings: accuracy is largely insensitive to macroblock size at
small extrapolation windows; at large windows, very small blocks (noisy,
miss global motion) and very large blocks (mix background into the object)
both hurt, with 16x16 the consistently good middle ground.
"""

from __future__ import annotations

from repro.harness import figure11a_macroblock_sensitivity, format_table

from conftest import run_once


BLOCK_SIZES = (4, 8, 16, 32, 64, 128)


def test_fig11a_macroblock_sensitivity(benchmark, small_tracking_dataset, sweep_runner):
    result = run_once(
        benchmark,
        figure11a_macroblock_sensitivity,
        dataset=small_tracking_dataset,
        block_sizes=BLOCK_SIZES,
        ew_values=(2, 8, 32),
        seed=1,
        runner=sweep_runner,
    )
    print()
    print(format_table(result.headers(), result.rows()))

    ew2 = result.values["EW-2"]
    ew8 = result.values["EW-8"]
    ew32 = result.values["EW-32"]

    # All sweeps cover every block size with valid rates.
    for series in (ew2, ew8, ew32):
        assert set(series.keys()) == set(BLOCK_SIZES)
        assert all(0.0 <= value <= 1.0 for value in series.values())

    # Small windows are insensitive to the macroblock size (paper: EW-2
    # curves are nearly flat).
    assert max(ew2.values()) - min(ew2.values()) < 0.15

    # Large windows are more sensitive than small windows.
    spread_ew32 = max(ew32.values()) - min(ew32.values())
    spread_ew2 = max(ew2.values()) - min(ew2.values())
    assert spread_ew32 >= spread_ew2 - 0.02

    # Overly small macroblocks (4/8 px) cannot capture an object's global
    # motion and clearly hurt once errors accumulate over a large window.
    assert min(ew32[4], ew32[8]) < max(ew32.values()) - 0.10

    # 16x16 stays close to the best choice at small windows.  (The paper's
    # second finding — that overly LARGE blocks also hurt — depends on
    # textured/cluttered backgrounds and does not fully reproduce on the
    # smooth synthetic backgrounds; see EXPERIMENTS.md.)
    assert ew2[16] >= max(ew2.values()) - 0.12
