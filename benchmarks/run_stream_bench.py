#!/usr/bin/env python
"""Append a multi-stream throughput measurement to ``BENCH_motion.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/run_stream_bench.py               # full preset
    PYTHONPATH=src python benchmarks/run_stream_bench.py --preset ci
    PYTHONPATH=src python benchmarks/run_stream_bench.py --streams 8 --frames 48

The benchmark feeds N synthetic camera streams through the
:class:`~repro.core.streaming.StreamMultiplexer` (fair-share E-frame
interleaving, batched I-frame inference) and records, per run:

* aggregate throughput (frames/sec across all streams) and wall time;
* per-stream mean service latency and queue wait;
* I-frame batching statistics (batch count, mean batch size);
* the serial one-stream-after-another baseline for the same workload, and
  the multiplexed/serial throughput ratio (~1.0 on one core — the
  multiplexer adds scheduling, not parallelism — but the entry tracks the
  scheduling overhead staying negligible);
* the worker-shard count and resolved frame-transport mode (``--workers 2``
  runs the same workload over worker processes with frames crossing the
  shared-memory transport; outputs are bit-identical, so the entry isolates
  the transport/scheduling overhead).

Each run **appends** a dated ``benchmark: "multi_stream"`` entry to the same
trajectory file the motion bench uses, so the perf history of both hot
paths accumulates in one place.  The pipeline configuration is a
:class:`~repro.core.spec.PipelineSpec` taken from the standard spec flags
(``--window``, ``--block-size``, ...); the recorded entry stores
``spec.to_cli_args()`` so any measurement can be reproduced by pasting the
flags back.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.backends import tracking_backend_for
from repro.core.spec import PipelineSpec
from repro.core.streaming import SCHEDULING_POLICIES, StreamMultiplexer
from repro.nn.models import build_mdnet
from repro.video.synthetic import SequenceConfig, SequenceGenerator

sys.path.insert(0, str(Path(__file__).resolve().parent))
from run_motion_bench import load_trajectory  # noqa: E402

#: Presets: name -> (streams, frames per stream, frame width, frame height).
PRESETS = {
    "full": (4, 60, 192, 108),
    # Small CI preset: enough frames for several full EW cycles per stream.
    "ci": (4, 24, 192, 108),
}


def make_streams(count: int, frames: int, width: int, height: int, seed: int):
    """N single-object synthetic camera streams with distinct content."""
    return [
        SequenceGenerator(
            SequenceConfig(
                name=f"camera_{index}",
                frame_width=width,
                frame_height=height,
                num_frames=frames,
                num_objects=1,
                seed=seed + index,
            )
        ).generate()
        for index in range(count)
    ]


def benchmark_multiplexer(
    spec: PipelineSpec,
    streams: int,
    frames: int,
    width: int,
    height: int,
    seed: int,
    e_frame_burst: int,
    max_inference_batch: int,
    policy: str = "fair",
    workers: int = 1,
    transport: str = "auto",
) -> dict:
    sequences = make_streams(streams, frames, width, height, seed)
    backend = tracking_backend_for("mdnet", seed=seed)

    # Serial baseline: each stream through its own dedicated session, one
    # after the other (what the pre-multiplexer API amounted to).  Sessions
    # are opened outside the timed region so both sides of the ratio
    # measure frame processing only — the multiplexer's wall_s likewise
    # covers drain(), with session setup done in untimed add_stream().
    serial_sessions = [
        spec.build(tracking_backend_for("mdnet", seed=seed)).open_session(source=sequence)
        for sequence in sequences
    ]
    # Warm-up: run one stream through a throwaway session so neither timed
    # region pays first-call costs (allocator, code paths) — the serial
    # region runs first and would otherwise absorb them all.
    warmup = spec.build(tracking_backend_for("mdnet", seed=seed)).open_session(
        source=sequences[0]
    )
    for _, frame in sequences[0].iter_frames():
        warmup.submit(frame)
    warmup.finish()

    serial_start = time.perf_counter()
    for session, sequence in zip(serial_sessions, sequences):
        for _, frame in sequence.iter_frames():
            session.submit(frame)
        session.finish()
    serial_s = time.perf_counter() - serial_start
    total_frames = sum(sequence.num_frames for sequence in sequences)

    # Multiplexed: all streams concurrently through one scheduler, with the
    # spec's SoC model attached so every frame is priced as it is processed
    # (batched I-frames amortise NNX weight traffic across streams).
    multiplexer = StreamMultiplexer(
        spec.build(backend),
        e_frame_burst=e_frame_burst,
        max_inference_batch=max_inference_batch,
        policy=policy,
        soc=spec.vision_soc(),
        network=build_mdnet(),
        extrapolation_on_cpu=spec.extrapolation_on_cpu,
        workers=workers,
        transport=transport,
    )
    for sequence in sequences:
        stream_id = multiplexer.add_stream(sequence)
        multiplexer.feed_sequence(stream_id, sequence)
    results = multiplexer.finish()
    report = multiplexer.report()
    assert all(len(results[s.name]) == s.num_frames for s in sequences)

    return {
        "benchmark": "multi_stream",
        "spec": spec.to_cli_args(),
        "spec_label": spec.describe(),
        "policy": policy,
        "streams": streams,
        "frames_per_stream": frames,
        "frame_width": width,
        "frame_height": height,
        "e_frame_burst": e_frame_burst,
        "max_inference_batch": max_inference_batch,
        "workers": report.workers,
        "transport": report.transport,
        "total_frames": report.frames_processed,
        "inference_frames": report.inference_frames,
        "extrapolation_frames": report.extrapolation_frames,
        "inference_batches": report.inference_batches,
        "mean_batch_size": report.mean_batch_size,
        "mux_wall_s": report.wall_s,
        "mux_aggregate_fps": report.aggregate_fps,
        "serial_wall_s": serial_s,
        "serial_aggregate_fps": total_frames / serial_s if serial_s > 0 else 0.0,
        "mux_vs_serial": (serial_s / report.wall_s) if report.wall_s > 0 else 0.0,
        # Modeled SoC energy (deterministic for a given spec + workload):
        # per-stream energy-per-frame plus the multi-camera aggregate.  The
        # aggregate is the exact shared-SoC figure (static power settled
        # once across streams); the per-stream sum is kept as the upper
        # bound it historically reported.
        "aggregate_energy_per_frame_mj": report.aggregate_energy_per_frame_j * 1e3,
        "aggregate_energy_upper_bound_mj": (
            report.aggregate_energy_upper_bound_j * 1e3
        ),
        "aggregate_power_w": report.aggregate_power_w,
        "per_stream": [
            {
                "name": stats.name,
                "frames": stats.frames_processed,
                "inference_rate": stats.inference_rate,
                "mean_service_latency_ms": stats.mean_service_latency_s * 1e3,
                "mean_queue_wait_ms": stats.mean_queue_wait_s * 1e3,
                "max_queue_depth": stats.max_queue_depth,
                "energy_per_frame_mj": (
                    report.stream_energy[stats.name].energy_per_frame_j * 1e3
                ),
                "soc_power_w": (
                    report.stream_energy[stats.name].total_energy_j
                    / report.stream_energy[stats.name].wall_time_s
                ),
            }
            for stats in report.streams
        ],
    }


def check_energy_floors(entry: dict, floors: dict) -> list:
    """Violations of the stored multi-stream energy ceiling (if any)."""
    ceiling = floors.get("max_stream_energy_per_frame_mj")
    if ceiling is None:
        return []
    violations = []
    for stream in entry["per_stream"]:
        value = stream.get("energy_per_frame_mj")
        if value is None:
            violations.append(
                f"max_stream_energy_per_frame_mj: stream '{stream['name']}' "
                "recorded no energy (energy model not attached?)"
            )
        elif value > ceiling:
            violations.append(
                f"max_stream_energy_per_frame_mj: stream '{stream['name']}' "
                f"measured {value:.2f} mJ/frame > ceiling {ceiling:.2f}"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_motion.json",
        help="trajectory JSON to append to (default: repo-root BENCH_motion.json)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="full",
        help="workload preset (default: full)",
    )
    parser.add_argument("--streams", type=int, default=None, help="override stream count")
    parser.add_argument(
        "--frames", type=int, default=None, help="override frames per stream"
    )
    parser.add_argument("--seed", type=int, default=0, help="content seed (default: 0)")
    parser.add_argument(
        "--e-frame-burst",
        type=int,
        default=4,
        help="max consecutive E-frames per stream per scheduling round (default: 4)",
    )
    parser.add_argument(
        "--max-inference-batch",
        type=int,
        default=4,
        help="max I-frames grouped into one inference batch (default: 4)",
    )
    parser.add_argument(
        "--policy",
        choices=list(SCHEDULING_POLICIES),
        default="fair",
        help="scheduling policy (default: fair)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker shards serving the streams (default: the spec's "
        "--exec-workers value; 1 stays in-process)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit non-zero when the per-stream modeled energy breaches the "
        "max_stream_energy_per_frame_mj ceiling stored in the trajectory "
        "file (the CI perf-guard job runs this)",
    )
    PipelineSpec.add_cli_options(parser)
    args = parser.parse_args()

    streams, frames, width, height = PRESETS[args.preset]
    if args.streams is not None:
        streams = args.streams
    if args.frames is not None:
        frames = args.frames
    spec = PipelineSpec.from_cli_args(args)

    workers = args.workers if args.workers is not None else spec.workers
    entry = benchmark_multiplexer(
        spec,
        streams=streams,
        frames=frames,
        width=width,
        height=height,
        seed=args.seed,
        e_frame_burst=args.e_frame_burst,
        max_inference_batch=args.max_inference_batch,
        policy=args.policy,
        workers=workers,
        transport=spec.transport,
    )
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    entry["preset"] = args.preset
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()

    document = load_trajectory(args.output)
    document["entries"].append(entry)
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended multi-stream entry {len(document['entries'])} to {args.output}")

    print(
        f"  {streams} streams x {frames} frames ({entry['spec_label']}, "
        f"{entry['workers']} worker(s), {entry['transport']} transport): "
        f"mux {entry['mux_aggregate_fps']:.1f} fps aggregate "
        f"({entry['mux_vs_serial']:.2f}x serial), "
        f"{entry['inference_batches']} I-batches, "
        f"mean batch {entry['mean_batch_size']:.2f}"
    )
    for stream in entry["per_stream"]:
        print(
            f"    {stream['name']}: {stream['frames']} frames, "
            f"{stream['inference_rate']:.2f} I-rate, "
            f"{stream['mean_service_latency_ms']:.2f} ms/frame service, "
            f"{stream['mean_queue_wait_ms']:.1f} ms mean queue wait, "
            f"{stream['energy_per_frame_mj']:.2f} mJ/frame modeled"
        )
    print(
        f"  aggregate: {entry['aggregate_energy_per_frame_mj']:.2f} mJ/frame, "
        f"{entry['aggregate_power_w']:.2f} W modeled SoC power"
    )

    if args.guard:
        violations = check_energy_floors(entry, document.get("floors", {}))
        if violations:
            for violation in violations:
                print(f"ENERGY FLOOR VIOLATION: {violation}", file=sys.stderr)
            return 1
        ceiling = document.get("floors", {}).get("max_stream_energy_per_frame_mj")
        print(f"energy floors OK: max_stream_energy_per_frame_mj={ceiling}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
