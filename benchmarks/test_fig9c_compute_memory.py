"""Fig. 9c: arithmetic operations and SoC memory traffic per frame.

Checks that replacing inferences with extrapolation shrinks both compute and
memory traffic: a YOLOv2 I-frame costs tens of GOPs and ~646 MB of DRAM
traffic, whereas an E-frame costs ~10 K operations and only the frame-buffer
and MV-metadata traffic (~20 MB at the SoC level).
"""

from __future__ import annotations

import pytest

from repro.harness import figure9c_compute_memory, format_table

from conftest import EW_SWEEP, run_once


def test_fig9c_compute_and_memory_per_frame(benchmark):
    rows = run_once(benchmark, figure9c_compute_memory, ew_values=EW_SWEEP, num_frames=7264)
    print()
    print(format_table(["Config", "GOPs/frame", "Traffic MB/frame"], rows))

    ops = {label: value for label, value, _traffic in rows}
    traffic = {label: value for label, _ops, value in rows}

    # Paper: YOLOv2 needs ~57 GOPs/frame; our 480p layer model gives ~52.
    assert ops["YOLOv2"] == pytest.approx(57.0, rel=0.2)
    # Compute per frame scales inversely with the extrapolation window.
    assert ops["EW-2"] == pytest.approx(ops["YOLOv2"] / 2, rel=0.02)
    assert ops["EW-32"] < 0.05 * ops["YOLOv2"]

    # Paper: each I-frame moves ~646 MB; E-frames only ~23 MB.
    assert traffic["YOLOv2"] == pytest.approx(646.0, rel=0.2)
    assert traffic["EW-32"] < 0.1 * traffic["YOLOv2"]
    # Monotonic decrease across the sweep.
    ordered = [traffic["YOLOv2"]] + [traffic[f"EW-{w}"] for w in EW_SWEEP]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
