#!/usr/bin/env python
"""Append a network-serving latency measurement to ``BENCH_motion.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/run_serve_bench.py                 # full preset
    PYTHONPATH=src python benchmarks/run_serve_bench.py --preset ci --faults drop,reorder
    PYTHONPATH=src python benchmarks/run_serve_bench.py --preset demo64 --faults drop,reorder

The benchmark is a load generator against the real TCP serving stack
(:class:`~repro.core.server.EuphratesServer` over
:class:`~repro.core.ingest.IngestCore` over the sharded execution core):
N synthetic cameras connect, are admitted against the
:class:`~repro.soc.frame_cost.CapacityModel` M/D/1 budget, and replay
their frames with configurable injected faults:

* ``drop``    — each frame is lost in flight with probability ``--drop-rate``;
* ``reorder`` — adjacent frames swap places with probability ``--reorder-rate``;
* ``burst``   — with probability ``--burst-rate`` a camera sends its next
  three frames back-to-back instead of round-robin pacing.

Per run the entry records client-observed p50/p99 result-ack latency,
per-stream modeled energy (the graceful drain settles the shared SoC pool,
so the aggregate is the *exact* shared-static-power figure), and the
server-side fault counters (gaps sealed, duplicates, late drops,
reorderings, overload drops).  ``--guard`` enforces the
``max_serve_p99_latency_ms`` ceiling stored in the trajectory file.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.backends import tracking_backend_for
from repro.core.ingest import IngestConfig, IngestCore, OVERLOAD_POLICIES
from repro.core.server import ServeClient, ServerThread
from repro.core.spec import PipelineSpec
from repro.core.streaming import StreamMultiplexer
from repro.nn.models import build_mdnet
from repro.soc.frame_cost import CapacityModel
from repro.video.synthetic import SequenceConfig, SequenceGenerator

sys.path.insert(0, str(Path(__file__).resolve().parent))
from run_motion_bench import load_trajectory  # noqa: E402

#: Presets: name -> (cameras, frames per camera, frame width, frame height).
PRESETS = {
    "full": (16, 48, 96, 54),
    # Small CI preset: exercises the full network path in seconds.
    "ci": (6, 24, 96, 54),
    # Acceptance demo: 64 concurrent cameras on one shared backend.
    "demo64": (64, 24, 96, 54),
}

FAULT_KINDS = ("drop", "reorder", "burst")

#: Default p99 ceiling written into the trajectory floors on first use.
DEFAULT_P99_CEILING_MS = 1500.0


def make_cameras(count: int, frames: int, width: int, height: int, seed: int):
    return [
        SequenceGenerator(
            SequenceConfig(
                name=f"camera_{index}",
                frame_width=width,
                frame_height=height,
                num_frames=frames,
                num_objects=1,
                seed=seed + index,
            )
        ).generate()
        for index in range(count)
    ]


def fault_schedule(
    frames: int,
    faults: set,
    rng: random.Random,
    drop_rate: float,
    reorder_rate: float,
) -> list:
    """The seqs one camera actually sends, in arrival order."""
    seqs = list(range(frames))
    if "drop" in faults:
        seqs = [s for s in seqs if rng.random() >= drop_rate] or [0]
    if "reorder" in faults:
        for index in range(len(seqs) - 1):
            if rng.random() < reorder_rate:
                seqs[index], seqs[index + 1] = seqs[index + 1], seqs[index]
    return seqs


def percentile(values: list, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def benchmark_serving(
    spec: PipelineSpec,
    cameras: int,
    frames: int,
    width: int,
    height: int,
    seed: int,
    faults: set,
    drop_rate: float,
    reorder_rate: float,
    burst_rate: float,
    workers: int,
    queue_capacity: int,
    overload_policy: str,
    target_utilization: float,
) -> dict:
    sequences = make_cameras(cameras, frames, width, height, seed)
    soc = spec.vision_soc()
    network = build_mdnet()
    capacity = CapacityModel(soc, network, extrapolation_on_cpu=spec.extrapolation_on_cpu)
    window_size = (
        spec.extrapolation_window
        if isinstance(spec.extrapolation_window, int)
        else 1
    )
    # Declared per-camera rate: fill ``target_utilization`` of the shared
    # backend across all cameras, so admission control admits the whole
    # fleet while still pricing it against the real budget.
    service_s = capacity.frame_service_time_s(window_size)
    declared_fps = target_utilization / (cameras * service_s)

    multiplexer = StreamMultiplexer(
        spec.build(tracking_backend_for("mdnet", seed=seed)),
        soc=soc,
        network=network,
        extrapolation_on_cpu=spec.extrapolation_on_cpu,
        workers=workers,
        transport=spec.transport,
        isolate_failures=True,
    )
    ingest = IngestCore(
        multiplexer,
        capacity=capacity,
        config=IngestConfig(
            queue_capacity=queue_capacity, overload_policy=overload_policy
        ),
    )

    rng = random.Random(seed)
    schedules = [
        fault_schedule(
            frames, faults, random.Random(seed * 7919 + index), drop_rate, reorder_rate
        )
        for index in range(cameras)
    ]
    latencies_ms: list = []
    summaries: list = []
    send_times: dict = {}
    wall_start = time.perf_counter()

    def drain_client(index: int, client: ServeClient, timeout: float = 0.0) -> None:
        client.poll(timeout=timeout)
        while client.results:
            record = client.results.pop()
            key = (index, record.get("seq"))
            sent = send_times.pop(key, None)
            if sent is not None:
                latencies_ms.append((time.perf_counter() - sent) * 1e3)

    with ServerThread(ingest) as server:
        clients = []
        try:
            for index, sequence in enumerate(sequences):
                client = ServeClient("127.0.0.1", server.port)
                client.hello(
                    handle=index,
                    stream=sequence.name,
                    width=width,
                    height=height,
                    fps=declared_fps,
                    window_size=window_size,
                )
                clients.append(client)
            projection = ingest.projected_queueing()

            # Round-robin replay with per-camera fault schedules.
            cursors = [0] * cameras
            live = set(range(cameras))
            while live:
                for index in sorted(live):
                    sequence, schedule = sequences[index], schedules[index]
                    burst = (
                        3 if "burst" in faults and rng.random() < burst_rate else 1
                    )
                    for _ in range(burst):
                        if cursors[index] >= len(schedule):
                            live.discard(index)
                            break
                        seq = schedule[cursors[index]]
                        cursors[index] += 1
                        send_times[(index, seq)] = time.perf_counter()
                        clients[index].send_frame(
                            index,
                            seq,
                            sequence.frame(seq),
                            truth=sequence.truth_detections(seq),
                        )
                    drain_client(index, clients[index])

            # Collect stragglers (acks shed by a bounded outbox never come,
            # so stop as soon as the count stops shrinking).
            deadline = time.perf_counter() + 30.0
            stalled_since = time.perf_counter()
            pending = len(send_times)
            while send_times and time.perf_counter() < deadline:
                for index, client in enumerate(clients):
                    drain_client(index, client, timeout=0.002)
                if len(send_times) < pending:
                    pending = len(send_times)
                    stalled_since = time.perf_counter()
                elif time.perf_counter() - stalled_since > 1.0:
                    break
            for index, client in enumerate(clients):
                summary = client.bye(index)
                drain_client(index, client)
                summaries.append(summary)
        finally:
            for client in clients:
                client.close()
        report = server.shutdown()
    wall_s = time.perf_counter() - wall_start

    accepted = sum(s.get("frames", 0) for s in summaries)
    fault_totals: dict = {}
    for summary in summaries:
        for key, value in (summary.get("faults") or {}).items():
            fault_totals[key] = fault_totals.get(key, 0) + value

    assert report is not None and report.shared_energy is not None, (
        "graceful drain must settle the shared SoC pool"
    )
    return {
        "benchmark": "serve",
        "spec": spec.to_cli_args(),
        "spec_label": spec.describe(),
        "cameras": cameras,
        "frames_per_camera": frames,
        "frame_width": width,
        "frame_height": height,
        "faults": sorted(faults),
        "drop_rate": drop_rate if "drop" in faults else 0.0,
        "reorder_rate": reorder_rate if "reorder" in faults else 0.0,
        "burst_rate": burst_rate if "burst" in faults else 0.0,
        "workers": report.workers,
        "transport": report.transport,
        "overload_policy": overload_policy,
        "queue_capacity": queue_capacity,
        "declared_fps_per_camera": declared_fps,
        "projected_utilization": (
            projection.utilization if projection is not None else None
        ),
        "frames_sent": sum(len(s) for s in schedules),
        "frames_accepted": accepted,
        "frames_processed": report.frames_processed,
        "result_acks": len(latencies_ms),
        "latency_p50_ms": percentile(latencies_ms, 0.50),
        "latency_p99_ms": percentile(latencies_ms, 0.99),
        "latency_mean_ms": (
            sum(latencies_ms) / len(latencies_ms) if latencies_ms else 0.0
        ),
        "wall_s": wall_s,
        "fault_totals": fault_totals,
        "aggregate_energy_j": report.aggregate_energy_j,
        "aggregate_energy_per_frame_mj": report.aggregate_energy_per_frame_j * 1e3,
        "shared_energy_exact": report.shared_energy is not None,
        "per_stream": [
            {
                "name": name,
                "frames": breakdown.num_frames,
                "energy_per_frame_mj": breakdown.energy_per_frame_j * 1e3,
            }
            for name, breakdown in sorted(report.stream_energy.items())
        ],
    }


def check_latency_floor(entry: dict, floors: dict) -> list:
    ceiling = floors.get("max_serve_p99_latency_ms")
    violations = []
    if not entry["result_acks"]:
        violations.append("max_serve_p99_latency_ms: no result acks were observed")
    elif ceiling is not None and entry["latency_p99_ms"] > ceiling:
        violations.append(
            f"max_serve_p99_latency_ms: measured p99 {entry['latency_p99_ms']:.1f} ms "
            f"> ceiling {ceiling:.1f}"
        )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_motion.json",
        help="trajectory JSON to append to (default: repo-root BENCH_motion.json)",
    )
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="full",
        help="workload preset (default: full)",
    )
    parser.add_argument("--cameras", type=int, default=None, help="override camera count")
    parser.add_argument(
        "--frames", type=int, default=None, help="override frames per camera"
    )
    parser.add_argument("--seed", type=int, default=0, help="content/fault seed")
    parser.add_argument(
        "--faults", default="",
        help=f"comma list of injected faults from {FAULT_KINDS} (default: none)",
    )
    parser.add_argument(
        "--drop-rate", type=float, default=0.05,
        help="per-frame loss probability under the drop fault (default: 0.05)",
    )
    parser.add_argument(
        "--reorder-rate", type=float, default=0.05,
        help="adjacent-swap probability under the reorder fault (default: 0.05)",
    )
    parser.add_argument(
        "--burst-rate", type=float, default=0.1,
        help="probability a camera bursts 3 frames per round (default: 0.1)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker shards serving the streams (default: the spec's "
        "--exec-workers value; 1 stays in-process)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=32,
        help="per-stream bounded ready-queue depth (default: 32)",
    )
    parser.add_argument(
        "--overload-policy", choices=list(OVERLOAD_POLICIES), default="degrade",
        help="what a full ready queue does (default: degrade)",
    )
    parser.add_argument(
        "--target-utilization", type=float, default=0.9,
        help="fraction of the capacity budget the fleet declares (default: 0.9)",
    )
    parser.add_argument(
        "--guard", action="store_true",
        help="exit non-zero when p99 latency breaches the "
        "max_serve_p99_latency_ms ceiling stored in the trajectory file "
        "(the CI serve-smoke job runs this)",
    )
    PipelineSpec.add_cli_options(parser)
    args = parser.parse_args()

    cameras, frames, width, height = PRESETS[args.preset]
    if args.cameras is not None:
        cameras = args.cameras
    if args.frames is not None:
        frames = args.frames
    faults = {f for f in args.faults.split(",") if f}
    unknown = faults - set(FAULT_KINDS)
    if unknown:
        parser.error(f"unknown fault(s) {sorted(unknown)}; expected {FAULT_KINDS}")
    spec = PipelineSpec.from_cli_args(args)
    workers = args.workers if args.workers is not None else spec.workers

    entry = benchmark_serving(
        spec,
        cameras=cameras,
        frames=frames,
        width=width,
        height=height,
        seed=args.seed,
        faults=faults,
        drop_rate=args.drop_rate,
        reorder_rate=args.reorder_rate,
        burst_rate=args.burst_rate,
        workers=workers,
        queue_capacity=args.queue_capacity,
        overload_policy=args.overload_policy,
        target_utilization=args.target_utilization,
    )
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    entry["preset"] = args.preset
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()

    document = load_trajectory(args.output)
    document.setdefault("floors", {}).setdefault(
        "max_serve_p99_latency_ms", DEFAULT_P99_CEILING_MS
    )
    document["entries"].append(entry)
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended serve entry {len(document['entries'])} to {args.output}")

    totals = entry["fault_totals"]
    print(
        f"  {cameras} cameras x {frames} frames over TCP "
        f"({entry['spec_label']}, {entry['workers']} worker(s), "
        f"{entry['transport']} transport, faults: "
        f"{','.join(entry['faults']) or 'none'}): "
        f"{entry['frames_accepted']}/{entry['frames_sent']} frames accepted, "
        f"projected utilization {entry['projected_utilization']:.3f}"
    )
    print(
        f"  latency p50 {entry['latency_p50_ms']:.2f} ms / "
        f"p99 {entry['latency_p99_ms']:.2f} ms over "
        f"{entry['result_acks']} acks; "
        f"energy {entry['aggregate_energy_per_frame_mj']:.2f} mJ/frame "
        f"(exact shared-SoC aggregate {entry['aggregate_energy_j']:.3f} J)"
    )
    print(
        f"  faults sealed: {totals.get('gaps', 0)} gaps, "
        f"{totals.get('late_drops', 0)} late, "
        f"{totals.get('duplicates', 0)} dups, "
        f"{totals.get('reordered', 0)} reordered, "
        f"{totals.get('overload_drops', 0)} overload drops, "
        f"{totals.get('degraded_submits', 0)} degraded submits"
    )

    if args.guard:
        violations = check_latency_floor(entry, document.get("floors", {}))
        if violations:
            for violation in violations:
                print(f"LATENCY FLOOR VIOLATION: {violation}", file=sys.stderr)
            return 1
        ceiling = document["floors"]["max_serve_p99_latency_ms"]
        print(f"latency floors OK: max_serve_p99_latency_ms={ceiling}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
