"""Fig. 1: accuracy vs compute requirement for object-detection approaches.

Regenerates the motivation figure: hand-crafted detectors (Haar, HOG) fit the
~1 TOPS mobile budget but are inaccurate; full CNN detectors (SSD, YOLOv2,
Faster R-CNN) are accurate but exceed the budget by an order of magnitude;
Tiny YOLO sits in between.
"""

from __future__ import annotations

from repro.harness import figure1_accuracy_vs_tops, format_table
from repro.nn.models import MOBILE_TOPS_BUDGET

from conftest import run_once


def test_fig1_accuracy_vs_tops(benchmark):
    rows = run_once(benchmark, figure1_accuracy_vs_tops)
    print()
    print(format_table(["Detector", "TOPS @480p60", "Accuracy %", "CNN", "Fits 1W"], rows))

    by_name = {row[0]: row for row in rows}
    # Hand-crafted approaches fit the budget but are far less accurate.
    for name in ("Haar", "HOG"):
        assert by_name[name][1] <= MOBILE_TOPS_BUDGET
        assert by_name[name][2] < 40.0
    # Full CNN detectors exceed the budget by >2x but are far more accurate.
    for name in ("SSD", "YOLOv2", "Faster R-CNN"):
        assert by_name[name][1] > 2 * MOBILE_TOPS_BUDGET
        assert by_name[name][2] > 70.0
    # Tiny YOLO fits the budget at a substantial accuracy penalty vs YOLOv2.
    assert by_name["Tiny YOLO"][1] <= MOBILE_TOPS_BUDGET
    assert by_name["YOLOv2"][2] - by_name["Tiny YOLO"][2] > 15.0
