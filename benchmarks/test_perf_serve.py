"""Perf smoke: the TCP serving path under drop/reorder faults.

Marked ``perf`` and excluded from the default pytest run (see ``pytest.ini``);
run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serve.py -m perf -q

CI runs the same workload through ``run_serve_bench.py --preset ci --faults
drop,reorder --guard`` (the ``serve-smoke`` job), which also enforces the
``max_serve_p99_latency_ms`` ceiling stored in ``BENCH_motion.json``.
"""

from __future__ import annotations

import pytest

from repro.core.spec import PipelineSpec

from run_serve_bench import DEFAULT_P99_CEILING_MS, PRESETS, benchmark_serving

pytestmark = pytest.mark.perf


def test_ci_preset_under_p99_ceiling():
    cameras, frames, width, height = PRESETS["ci"]
    entry = benchmark_serving(
        PipelineSpec(),
        cameras=cameras,
        frames=frames,
        width=width,
        height=height,
        seed=0,
        faults={"drop", "reorder"},
        drop_rate=0.05,
        reorder_rate=0.05,
        burst_rate=0.0,
        workers=1,
        queue_capacity=32,
        overload_policy="degrade",
        target_utilization=0.9,
    )
    # The whole fleet was admitted and every surviving frame processed.
    assert entry["projected_utilization"] < 1.0
    assert entry["frames_accepted"] == entry["frames_sent"]
    assert entry["frames_processed"] == entry["frames_accepted"]
    # Drops became sealed gaps, visible in the fault counters.
    assert entry["fault_totals"]["gaps"] > 0
    assert entry["fault_totals"]["reordered"] > 0
    # Client-observed ack latency stays under the stored ceiling.
    assert entry["result_acks"] > 0
    assert entry["latency_p99_ms"] <= DEFAULT_P99_CEILING_MS, (
        f"p99 {entry['latency_p99_ms']:.1f} ms over ceiling"
    )
    # Graceful drain settled the shared SoC pool exactly.
    assert entry["shared_energy_exact"]
    assert entry["aggregate_energy_per_frame_mj"] > 0
