#!/usr/bin/env python
"""Append a design-space autotune measurement to ``BENCH_motion.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/run_tune_bench.py               # full preset
    PYTHONPATH=src python benchmarks/run_tune_bench.py --preset ci --guard

Each run sweeps the ``ci`` tuning space with ``repro.harness.tune.run_tune``
(grid strategy, a fresh store), records the measured Pareto frontier and
the headline co-design number — the lowest modeled energy-per-frame whose
tracking accuracy is at least the seed (default-spec) configuration's —
then **appends** a dated ``benchmark: "tune"`` entry to the shared
trajectory file.  The sweep is then immediately re-run against the same
store, and the entry records how many points the resume pass evaluated:
anything but zero means the disk store stopped deduplicating work.

``--guard`` enforces the tune floors stored in the file (the CI
``perf-guard`` job runs this): the process exits non-zero when the
frontier collapses below ``min_tune_frontier_points``, when the best
achievable energy at seed accuracy rises above
``max_tune_best_energy_per_frame_mj`` (the extrapolation scheduling or the
cost core regressed), or when the resume pass re-evaluated anything.

Commit the refreshed JSON whenever the tuner, the spec surface, or the
cost core changes.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

from repro.harness.tune import best_at_baseline_accuracy, point_key, run_tune
from repro.harness.tune import TUNE_PRESETS, TuneStore
from repro.core.spec import PipelineSpec

#: Floors seeded into a fresh trajectory file.  The committed
#: ``BENCH_motion.json`` carries the authoritative values; edit them there
#: (with justification) rather than here.
DEFAULT_FLOORS = {
    # The ci space must keep a real accuracy/energy trade-off surface: a
    # frontier of fewer than 3 non-dominated points means the sweep
    # degenerated (every configuration collapsed onto one objective point).
    "min_tune_frontier_points": 3,
    # Ceiling on the best modeled energy-per-frame at >= seed accuracy on
    # the ci space at ci fidelity (measured 15.17 mJ/frame: the EW-2
    # baseline itself — the ci space's capture presets only cost more).
    # The modeled energy is deterministic, so a breach means the
    # extrapolation schedule or the CostMeter core regressed, not noise.
    "max_tune_best_energy_per_frame_mj": 15.5,
}

#: Fidelity preset each bench preset measures at (the tune space is always
#: ``ci``; ``full`` fidelity is the EXPERIMENTS.md configuration).
PRESETS = {"ci": "ci", "full": "full"}


def load_trajectory(path: Path) -> dict:
    """Load (or initialise) the shared trajectory document."""
    if not path.exists():
        return {"schema": 2, "floors": dict(DEFAULT_FLOORS), "entries": []}
    document = json.loads(path.read_text())
    if "entries" not in document:
        document = {"schema": 2, "floors": {}, "entries": [document]}
    floors = document.setdefault("floors", {})
    for key, value in DEFAULT_FLOORS.items():
        floors.setdefault(key, value)
    return document


def measure(fidelity_preset: str, seed: int, workers: int | None) -> dict:
    """One tune sweep + resume pass; returns the trajectory entry."""
    with tempfile.TemporaryDirectory(prefix="tune-bench-") as tmp:
        store_path = Path(tmp) / "store.jsonl"
        report = run_tune(
            "ci",
            preset=fidelity_preset,
            strategy="grid",
            seed=seed,
            store_path=store_path,
            max_workers=workers,
        )
        resumed = run_tune(
            "ci",
            preset=fidelity_preset,
            strategy="grid",
            seed=seed,
            store_path=store_path,
            resume=True,
            max_workers=workers,
        )
        store = TuneStore(store_path)
        store.load()
        fidelity = TUNE_PRESETS[fidelity_preset]
        baseline = store.get(point_key(PipelineSpec(), fidelity, seed))
        best = best_at_baseline_accuracy(store.results(), baseline)
    entry = {
        "benchmark": "tune",
        "space": "ci",
        "strategy": "grid",
        "seed": seed,
        "fidelity": fidelity.to_dict(),
        "candidates": report.artifact.metadata["candidates"],
        "evaluated": report.evaluated,
        "resume_reevaluated": resumed.evaluated,
        "frontier_points": len(report.frontier),
        "frontier": [
            {
                "config": result.describe,
                "spec": list(result.spec_args),
                "accuracy": round(result.accuracy, 4),
                "energy_per_frame_mj": round(result.energy_per_frame_mj, 3),
                "fps": round(result.fps, 1),
            }
            for result in report.frontier
        ],
    }
    if baseline is not None:
        entry["baseline_accuracy"] = round(baseline.accuracy, 4)
        entry["baseline_energy_per_frame_mj"] = round(
            baseline.energy_per_frame_mj, 3
        )
    if best is not None:
        entry["best_energy_per_frame_mj"] = round(best.energy_per_frame_mj, 3)
        entry["best_config"] = best.describe
        entry["best_accuracy"] = round(best.accuracy, 4)
    return entry


def check_floors(entry: dict, floors: dict) -> list:
    """Return human-readable violations of the stored tune floors."""
    violations = []
    floor = floors.get("min_tune_frontier_points")
    if floor is not None and entry["frontier_points"] < floor:
        violations.append(
            f"min_tune_frontier_points: frontier has {entry['frontier_points']} "
            f"point(s) < floor {floor}"
        )
    ceiling = floors.get("max_tune_best_energy_per_frame_mj")
    best = entry.get("best_energy_per_frame_mj")
    if ceiling is not None:
        if best is None:
            violations.append(
                "max_tune_best_energy_per_frame_mj: no best point was measured "
                "(baseline configuration missing from the sweep?)"
            )
        elif best > ceiling:
            violations.append(
                f"max_tune_best_energy_per_frame_mj: measured {best:.2f} mJ "
                f"> ceiling {ceiling:.2f} mJ"
            )
    if entry["resume_reevaluated"] != 0:
        violations.append(
            f"resume: second pass re-evaluated {entry['resume_reevaluated']} "
            "point(s) (the disk store must make resume free)"
        )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_motion.json",
        help="trajectory JSON to append to (default: repo-root BENCH_motion.json)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="full",
        help="dataset fidelity of the sweep: 'full' = the EXPERIMENTS.md "
        "configuration, 'ci' = the small perf-guard profile (default: full)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="backend seed (default: 1)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sequence execution (default: 1, serial — "
        "adaptive-window points are only worker-invariant serially)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="fail (exit 1) when the fresh measurement violates the tune "
        "floors stored in the trajectory file",
    )
    args = parser.parse_args()

    workers = args.workers if args.workers and args.workers > 1 else None
    entry = measure(PRESETS[args.preset], args.seed, workers)
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    entry["preset"] = args.preset
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()

    document = load_trajectory(args.output)
    document["entries"].append(entry)
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended entry {len(document['entries'])} to {args.output}")

    print(
        f"  {entry['candidates']} candidate(s), {entry['evaluated']} evaluated, "
        f"resume re-evaluated {entry['resume_reevaluated']}"
    )
    for point in entry["frontier"]:
        print(
            f"  frontier: {point['config']:<28s} acc {point['accuracy']:.3f}  "
            f"{point['energy_per_frame_mj']:.2f} mJ/frame  {point['fps']:.0f} fps"
        )
    if "best_energy_per_frame_mj" in entry:
        print(
            f"  best at >= seed accuracy: {entry['best_config']} — "
            f"{entry['best_energy_per_frame_mj']:.2f} mJ/frame"
        )

    if args.guard:
        violations = check_floors(entry, document["floors"])
        if violations:
            for violation in violations:
                print(f"TUNE FLOOR VIOLATION — {violation}", file=sys.stderr)
            return 1
        relevant = {
            key: value
            for key, value in document["floors"].items()
            if key.endswith("frontier_points") or "tune" in key
        }
        print(
            "tune floors OK:",
            ", ".join(f"{key}={value}" for key, value in relevant.items()),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
