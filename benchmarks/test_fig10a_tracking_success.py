"""Fig. 10a: tracking success rate vs IoU threshold (MDNet, EW-N, EW-A).

Runs the Euphrates pipeline with the MDNet-class tracker over the combined
OTB-like + VOT-like pool.  Expected shape: EW-2 within ~1% of the baseline at
IoU 0.5, growing degradation with larger windows, and the adaptive mode
trading a little accuracy for a much lower inference rate.
"""

from __future__ import annotations

from repro.harness import figure10a_tracking_success, format_table

from conftest import EW_SWEEP, run_once


def test_fig10a_tracking_success(benchmark, tracking_dataset, sweep_runner):
    result = run_once(
        benchmark,
        figure10a_tracking_success,
        dataset=tracking_dataset,
        ew_values=EW_SWEEP,
        include_adaptive=True,
        seed=1,
        runner=sweep_runner,
    )
    print()
    print(format_table(result.headers(), result.rows()))
    print()
    print("inference rates:", {k: round(v, 3) for k, v in result.inference_rates.items()})

    baseline = result.at("MDNet", 0.5)
    ew2 = result.at("EW-2", 0.5)
    ew4 = result.at("EW-4", 0.5)
    ew32 = result.at("EW-32", 0.5)
    adaptive = result.at("EW-A", 0.5)

    # Paper: EW-2 loses only ~1% success at IoU 0.5.
    assert baseline - ew2 < 0.08
    # Larger windows lose progressively more accuracy (paper: EW-32 ~27% loss).
    assert ew2 >= ew4 >= ew32
    assert baseline - ew32 > 0.10
    # Adaptive mode is more accurate than EW-32 while triggering far fewer
    # inferences than the baseline.
    assert adaptive > ew32
    assert result.inference_rates["EW-A"] < 0.6
    assert abs(result.inference_rates["EW-2"] - 0.5) < 0.05
    assert abs(result.inference_rates["EW-4"] - 0.25) < 0.05
