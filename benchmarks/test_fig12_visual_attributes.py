"""Fig. 12: accuracy sensitivity to visual attributes (MDNet vs EW-2).

The paper's finding: Euphrates' extrapolation loses the most accuracy on
fast-motion and motion-blur scenes (where block matching fails), and little
elsewhere.
"""

from __future__ import annotations

import numpy as np

from repro.harness import figure12_attribute_sensitivity
from repro.harness.reporting import format_table
from repro.video.attributes import VisualAttribute

from conftest import run_once


def test_fig12_attribute_sensitivity(benchmark, tracking_dataset, sweep_runner):
    breakdown = run_once(
        benchmark,
        figure12_attribute_sensitivity,
        dataset=tracking_dataset,
        extrapolation_window=2,
        seed=1,
        runner=sweep_runner,
    )
    baseline = breakdown["MDNet"]
    euphrates = breakdown["EW-2"]

    rows = []
    for attribute in baseline:
        rows.append(
            [
                attribute.display_name,
                round(baseline[attribute], 3),
                round(euphrates.get(attribute, 0.0), 3),
                round(baseline[attribute] - euphrates.get(attribute, 0.0), 3),
            ]
        )
    print()
    print(format_table(["Attribute", "MDNet", "EW-2", "Loss"], rows))

    # Both configurations report every attribute present in the dataset.
    assert set(baseline.keys()) == set(euphrates.keys())
    assert len(baseline) >= 6

    losses = {attr: baseline[attr] - euphrates[attr] for attr in baseline}
    motion_attrs = [
        attr
        for attr in (VisualAttribute.FAST_MOTION, VisualAttribute.MOTION_BLUR)
        if attr in losses
    ]
    easy_attrs = [attr for attr in losses if attr not in motion_attrs]
    assert motion_attrs, "the dataset must contain fast-motion sequences"

    # Fast motion / blur are where extrapolation loses the most accuracy.
    worst_motion_loss = max(losses[attr] for attr in motion_attrs)
    mean_easy_loss = float(np.mean([losses[attr] for attr in easy_attrs]))
    assert worst_motion_loss >= mean_easy_loss - 0.02
    # On the remaining attributes EW-2 stays close to the baseline.
    assert mean_easy_loss < 0.12
