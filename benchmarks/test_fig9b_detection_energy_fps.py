"""Fig. 9b: normalized SoC energy and achieved FPS for object detection.

Evaluates the calibrated SoC model over the paper's configurations: baseline
YOLOv2, the EW sweep, EW-8 with CPU-hosted extrapolation, and Tiny YOLO.
The headline claims: EW-2 doubles the frame rate (17 -> ~35 FPS) and saves
~45% energy; EW-4 reaches the 60 FPS real-time target at ~66% savings;
software extrapolation negates most of the benefit; Tiny YOLO costs more
energy than EW-32.
"""

from __future__ import annotations

import pytest

from repro.harness import figure9b_detection_energy
from repro.harness.experiments import EnergyExperimentResult
from repro.harness.reporting import format_table

from conftest import EW_SWEEP, run_once


def test_fig9b_detection_energy_and_fps(benchmark):
    result: EnergyExperimentResult = run_once(
        benchmark, figure9b_detection_energy, ew_values=EW_SWEEP, num_frames=7264
    )
    print()
    print(format_table(result.headers(), result.rows()))

    baseline = result.breakdowns["YOLOv2"]
    ew2 = result.breakdowns["EW-2"]
    ew4 = result.breakdowns["EW-4"]
    ew8 = result.breakdowns["EW-8"]
    ew32 = result.breakdowns["EW-32"]
    ew8_cpu = result.breakdowns["EW-8@CPU"]
    tiny = result.breakdowns["TinyYOLO"]

    # Baseline YOLOv2 falls far short of real time (paper: ~17 FPS).
    assert 14.0 <= baseline.fps <= 22.0
    # EW-2 doubles the detection rate and saves ~45% energy.
    assert ew2.fps == pytest.approx(2 * baseline.fps, rel=0.05)
    assert 0.35 <= ew2.energy_saving_vs(baseline) <= 0.60
    # EW-4 reaches the 60 FPS camera rate at ~66% savings.
    assert ew4.fps == pytest.approx(60.0, rel=0.01)
    assert 0.55 <= ew4.energy_saving_vs(baseline) <= 0.80
    # Extrapolating beyond EW-8 gives only marginal additional savings.
    assert result.normalized_energy("EW-8") - result.normalized_energy("EW-32") < 0.10
    # Hosting extrapolation on the CPU negates the benefit (costs ~EW-4).
    assert ew8_cpu.energy_per_frame_j > 1.3 * ew8.energy_per_frame_j
    assert ew8_cpu.energy_per_frame_j == pytest.approx(ew4.energy_per_frame_j, rel=0.30)
    # Tiny YOLO burns more energy than EW-32.
    assert tiny.energy_per_frame_j > 1.3 * ew32.energy_per_frame_j
